package config

import (
	"fmt"
	"sort"

	"github.com/swamp-project/swamp/internal/tenant"
)

// quotasSection is the config-file table holding per-tenant quota
// overrides. Its keys are tenant ids (operator-defined), so it is handled
// outside the field registry: applyFile routes it here, Validate checks
// every spec, and ValidateReload treats any change as dynamic.
const quotasSection = "tenant.quotas"

// DefaultQuota assembles the quota applied to tenants without an explicit
// [tenant.quotas] override.
func (t Tenant) DefaultQuota() tenant.Quota {
	return tenant.Quota{
		MsgsPerSec:      t.DefaultMsgsPerSec,
		BytesPerSec:     t.DefaultBytesPerSec,
		Inflight:        t.DefaultInflight,
		Subscriptions:   t.DefaultSubscriptions,
		WebhookSharePct: t.DefaultWebhookSharePct,
	}
}

// Limits resolves the full quota table: the section defaults plus every
// parsed [tenant.quotas] override. Specs are assumed pre-validated
// (Validate aggregates spec errors); a malformed spec that somehow
// reaches here falls back to the default quota rather than panicking.
func (t Tenant) Limits() tenant.Limits {
	l := tenant.Limits{Default: t.DefaultQuota()}
	if len(t.Quotas) > 0 {
		l.Overrides = make(map[tenant.ID]tenant.Quota, len(t.Quotas))
		for id, spec := range t.Quotas {
			q, err := tenant.ParseSpec(spec, l.Default)
			if err != nil {
				q = l.Default
			}
			l.Overrides[tenant.ID(id)] = q
		}
	}
	return l
}

// validateQuotas aggregates per-entry [tenant.quotas] spec errors.
func validateQuotas(c *Config) Errors {
	var errs Errors
	base := c.Tenant.DefaultQuota()
	for _, id := range sortedKeys(c.Tenant.Quotas) {
		if id == "" {
			errs = append(errs, FieldError{
				Name: quotasSection,
				Err:  fmt.Errorf("empty tenant id"),
			})
			continue
		}
		if _, err := tenant.ParseSpec(c.Tenant.Quotas[id], base); err != nil {
			errs = append(errs, FieldError{Name: quotasSection + "." + id, Err: err})
		}
	}
	return errs
}

// diffQuotas returns the dotted names of [tenant.quotas] entries that
// differ between two configs — added, removed or changed overrides.
// Override changes are always dynamic: the whole point of the table is
// live retuning.
func diffQuotas(old, new *Config) []string {
	var out []string
	for id, spec := range new.Tenant.Quotas {
		if prev, ok := old.Tenant.Quotas[id]; !ok || prev != spec {
			out = append(out, quotasSection+"."+id)
		}
	}
	for id := range old.Tenant.Quotas {
		if _, ok := new.Tenant.Quotas[id]; !ok {
			out = append(out, quotasSection+"."+id)
		}
	}
	sort.Strings(out)
	return out
}
