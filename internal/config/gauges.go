package config

import (
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
)

// ExportGauges publishes every numeric knob's resolved value as a
// config.<name> gauge (durations in seconds, booleans as 0/1; strings
// have no gauge form and are skipped). swampd calls it at boot and after
// every successful reload, so the live knob surface is observable at
// /metrics — the ops drill asserts a reloaded knob through exactly this.
func ExportGauges(reg *metrics.Registry, c *Config) {
	for _, f := range Fields() {
		g := func() *metrics.Gauge { return reg.Gauge("config." + f.Name) }
		switch val := f.Get(c).(type) {
		case time.Duration:
			g().Set(val.Seconds())
		case int:
			g().Set(float64(val))
		case int64:
			g().Set(float64(val))
		case bool:
			if val {
				g().Set(1)
			} else {
				g().Set(0)
			}
		}
	}
}
