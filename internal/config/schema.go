// Package config is the platform's configuration plane: one typed,
// validated schema covering every operational knob, a layered loader
// (defaults → config file → SWAMP_* environment → command-line flags,
// last writer wins) with per-knob provenance, and the dynamic-reload
// protocol swampd's SIGHUP / POST /admin/reload surface is built on.
//
// The schema is the single source of truth: flag declarations, env
// variable names, defaults, validation bounds and the DESIGN.md knob
// table are all derived from the struct tags below, so a knob added once
// appears in swampd, swamp-sim and the documentation without hand-copied
// declarations.
//
// Tag grammar (on leaf fields):
//
//	knob:"flush_watermark"       key within the section ([mqtt] table key)
//	flag:"mqtt-flush-watermark"  command-line flag name
//	default:"8192"               literal default, parsed per field type
//	dynamic:"true"               reloadable at runtime (validate-then-swap)
//	min:"-1" max:"65536"         numeric bounds (inclusive), type-aware
//	oneof:"a,b,c"                enumerated string values
//	usage:"..."                  one-line help, shared by flags and docs
//
// Environment variable names derive mechanically from the field name:
// section "mqtt" + knob "flush_watermark" → SWAMP_MQTT_FLUSH_WATERMARK.
package config

import (
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config is the full resolved configuration, one struct per plane.
type Config struct {
	Server     Server     `section:"server"`
	Log        Log        `section:"log"`
	MQTT       MQTT       `section:"mqtt"`
	NGSI       NGSI       `section:"ngsi"`
	Timeseries Timeseries `section:"timeseries"`
	WAL        WAL        `section:"wal"`
	Webhooks   Webhooks   `section:"webhooks"`
	Security   Security   `section:"security"`
	HTTP       HTTP       `section:"http"`
	Cluster    Cluster    `section:"cluster"`
	Tenant     Tenant     `section:"tenant"`
	Sim        Sim        `section:"sim"`
}

// Clone returns a deep copy of the config — candidate configs for the
// validate-then-swap reload path and the admin quota API mutate the copy,
// never the live config.
func (c *Config) Clone() *Config {
	out := *c
	if c.Tenant.Quotas != nil {
		out.Tenant.Quotas = make(map[string]string, len(c.Tenant.Quotas))
		for k, v := range c.Tenant.Quotas {
			out.Tenant.Quotas[k] = v
		}
	}
	return &out
}

// Server configures the swampd daemon itself.
type Server struct {
	Listen              string        `knob:"listen" flag:"listen" default:"127.0.0.1:1883" usage:"MQTT TCP listen address"`
	HTTPListen          string        `knob:"http_listen" flag:"http" default:"127.0.0.1:8026" usage:"HTTP API listen address (empty disables)"`
	Pilot               string        `knob:"pilot" flag:"pilot" default:"matopiba" usage:"pilot: matopiba, guaspari, intercrop, cbec"`
	Mode                string        `knob:"mode" flag:"mode" default:"farm-fog" oneof:"cloud-only,farm-fog,mobile-fog" usage:"deployment mode"`
	Interval            time.Duration `knob:"interval" flag:"interval" default:"2s" min:"1ms" usage:"sensor sampling / decision interval"`
	Sealed              bool          `knob:"sealed" flag:"sealed" default:"false" usage:"enable secchan payload encryption"`
	ReadyQueueWatermark int           `knob:"ready_queue_watermark" flag:"ready-queue-watermark" default:"100000" min:"0" usage:"aggregate MQTT queue depth above which /readyz reports 503 (0 disables the check)"`
}

// Log configures structured logging.
type Log struct {
	Level  string `knob:"level" flag:"log-level" default:"info" oneof:"debug,info,warn,error" usage:"minimum log level"`
	Format string `knob:"format" flag:"log-format" default:"text" oneof:"text,json" usage:"log output format"`
}

// MQTT configures the transport plane (internal/mqtt).
type MQTT struct {
	SessionQueue   int           `knob:"session_queue" flag:"mqtt-queue" default:"256" min:"1" dynamic:"true" usage:"per-session outbound queue bound in packets (reload applies to new sessions)"`
	RetryInterval  time.Duration `knob:"retry_interval" flag:"mqtt-retry" default:"1s" min:"1ms" usage:"QoS 1 redelivery / keepalive cadence"`
	FlushWatermark int           `knob:"flush_watermark" flag:"mqtt-flush-watermark" default:"8192" dynamic:"true" usage:"session writer flush threshold in bytes (negative = flush per packet)"`
	RouteCache     int           `knob:"route_cache" flag:"mqtt-route-cache" default:"4096" dynamic:"true" usage:"topic route cache capacity (negative disables caching)"`
}

// NGSI configures the context plane (internal/ngsi ingest side).
type NGSI struct {
	Shards         int           `knob:"shards" flag:"ctx-shards" default:"8" min:"1" usage:"context broker entity-store shard count"`
	AgentBatch     time.Duration `knob:"agent_batch_interval" flag:"agent-batch-interval" default:"2ms" usage:"IoT agent northbound coalescing window (negative = synchronous per-message updates)"`
	FogSyncBatches int           `knob:"fog_sync_batches" flag:"fog-sync-batches" default:"32" min:"1" usage:"buffered telemetry batches the fog node coalesces per backhaul round trip"`
}

// Timeseries configures the telemetry plane (internal/timeseries).
type Timeseries struct {
	Shards           int           `knob:"shards" flag:"ts-shards" default:"8" min:"1" usage:"telemetry store shard count"`
	ChunkSize        int           `knob:"chunk_size" flag:"ts-chunk" default:"512" min:"2" usage:"points per sealed immutable chunk"`
	Retention        time.Duration `knob:"retention" flag:"ts-retention" default:"0s" min:"0s" dynamic:"true" usage:"age-based telemetry retention (0 keeps everything)"`
	EvictionInterval time.Duration `knob:"eviction_interval" flag:"ts-eviction-interval" default:"1m" min:"1ms" usage:"background eviction cadence (meaningful with retention set)"`
}

// WAL configures the durability plane (internal/wal).
type WAL struct {
	Dir              string        `knob:"dir" flag:"wal-dir" default:"" usage:"WAL+snapshot directory (empty = in-memory only; existing state is recovered on start)"`
	SegmentBytes     int64         `knob:"segment_bytes" flag:"wal-segment-bytes" default:"8388608" min:"4096" usage:"WAL segment roll threshold in bytes"`
	FsyncInterval    time.Duration `knob:"fsync_interval" flag:"wal-fsync-interval" default:"0s" min:"0s" usage:"group-commit coalescing window (0 = fsync when the commit queue drains)"`
	SnapshotInterval time.Duration `knob:"snapshot_interval" flag:"snapshot-interval" default:"5m" dynamic:"true" usage:"snapshot + WAL truncation cadence (negative disables periodic snapshots)"`
}

// Webhooks configures outbound subscription delivery (internal/ngsi pool).
type Webhooks struct {
	Workers int           `knob:"workers" flag:"webhook-workers" default:"8" min:"1" dynamic:"true" usage:"concurrent outbound webhook deliveries"`
	Retry   time.Duration `knob:"retry_backoff" flag:"webhook-retry" default:"250ms" min:"1ms" dynamic:"true" usage:"first webhook retry backoff, doubling per attempt"`
	Queue   int           `knob:"queue" flag:"webhook-queue" default:"64" min:"1" usage:"per-subscription pending notification queue bound"`
}

// Security configures the security plane (internal/security).
type Security struct {
	AuditRing          int           `knob:"audit_ring" flag:"audit-ring" default:"4096" min:"1" usage:"PEP audit ring capacity (overflow overwrites oldest, counted)"`
	TokenPurgeInterval time.Duration `knob:"token_purge_interval" flag:"token-purge-interval" default:"1m" usage:"expired/revoked token purge cadence (negative disables the loop)"`
}

// HTTP configures the northbound API server (internal/httpapi).
type HTTP struct {
	QueryCap     int `knob:"query_cap" flag:"query-cap" default:"1000" min:"1" dynamic:"true" usage:"hard cap on /v2/entities page sizes and offsets"`
	DefaultLimit int `knob:"default_limit" flag:"query-default-limit" default:"100" min:"1" usage:"page size applied when a listing names none"`
}

// Cluster configures the cluster plane (internal/cluster). Topology
// (node_id, peers, listen, partitions, replicas) is static for a
// process's lifetime; the safety/liveness trade-offs (ack_timeout,
// max_ready_lag) are dynamic.
type Cluster struct {
	NodeID      string        `knob:"node_id" flag:"cluster-node" default:"" usage:"this node's cluster identity (empty disables clustering)"`
	Peers       string        `knob:"peers" flag:"cluster-peers" default:"" usage:"comma-separated peer replication endpoints, id=host:port (must include this node)"`
	Listen      string        `knob:"listen" flag:"cluster-listen" default:"" usage:"replication TCP listen address"`
	Partitions  int           `knob:"partitions" flag:"cluster-partitions" default:"16" min:"1" usage:"consistent-hash partition count (identical on every node)"`
	Replicas    int           `knob:"replicas" flag:"cluster-replicas" default:"2" min:"1" usage:"replicas per partition, leader included"`
	MinISR      int           `knob:"min_isr" flag:"cluster-min-isr" default:"1" min:"0" usage:"follower acks required before a write is acknowledged (0 = leader-local durability only)"`
	AckTimeout  time.Duration `knob:"ack_timeout" flag:"cluster-ack-timeout" default:"5s" min:"1ms" dynamic:"true" usage:"how long a leader waits for min_isr follower acks before failing the write"`
	MaxReadyLag int64         `knob:"max_ready_lag" flag:"cluster-max-ready-lag" default:"100000" min:"0" dynamic:"true" usage:"replication lag in records above which /readyz reports 503 (0 disables the gate)"`
}

// Tenant configures the multi-tenant admission plane (internal/tenant,
// DESIGN.md §11). The default_* knobs form the quota applied to any
// tenant without an explicit override; per-tenant overrides live in the
// [tenant.quotas] table (tenant id → compact spec string, e.g.
// "msgs=500,bytes=1048576"), which is not a registry field — arbitrary
// keys don't fit the schema — but is loaded, validated and reloaded
// through the same layered path. Every knob here is dynamic: admission
// policy is exactly the kind of thing operators retune under load.
type Tenant struct {
	Enabled                bool          `knob:"enabled" flag:"tenant-admission" default:"false" dynamic:"true" usage:"enforce per-tenant admission control at the MQTT, HTTP and fog ingress points"`
	DefaultMsgsPerSec      int           `knob:"default_msgs_per_sec" flag:"tenant-msgs" default:"1000" min:"0" dynamic:"true" usage:"per-tenant sustained message budget across all ingress points (0 suspends unlisted tenants)"`
	DefaultBytesPerSec     int64         `knob:"default_bytes_per_sec" flag:"tenant-bytes" default:"1048576" min:"0" dynamic:"true" usage:"per-tenant sustained payload-byte budget (0 leaves bytes unenforced)"`
	DefaultInflight        int           `knob:"default_inflight" flag:"tenant-inflight" default:"64" min:"0" dynamic:"true" usage:"per-tenant concurrent HTTP request bound (0 = unenforced)"`
	DefaultSubscriptions   int           `knob:"default_subscriptions" flag:"tenant-subs" default:"32" min:"0" dynamic:"true" usage:"per-tenant live NGSI subscription bound (0 = unenforced)"`
	DefaultWebhookSharePct int           `knob:"default_webhook_share_pct" flag:"tenant-webhook-share" default:"50" min:"0" max:"100" dynamic:"true" usage:"per-tenant share of each webhook queue in percent (0 or 100 = full queue)"`
	Burst                  time.Duration `knob:"burst" flag:"tenant-burst" default:"2s" min:"100ms" dynamic:"true" usage:"token-bucket burst window: a tenant may spend this much quota ahead of its sustained rate"`
	MetricsTopK            int           `knob:"metrics_topk" flag:"tenant-topk" default:"8" min:"1" dynamic:"true" usage:"tenants granted named swamp_tenant_* metric series; the rest aggregate into _other"`

	// Quotas holds per-tenant overrides from the [tenant.quotas] table
	// and the admin quota API: tenant id → spec string parsed by
	// tenant.ParseSpec. Not a schema field (knob:"-"): its keys are
	// operator-defined, so it bypasses the registry but shares the
	// load/validate/reload path.
	Quotas map[string]string `knob:"-"`
}

// Sim configures simulation-only behaviour shared by swampd and swamp-sim.
type Sim struct {
	Seed            int64         `knob:"seed" flag:"seed" default:"1" usage:"seed driving every stochastic component (swampd: 0 derives from the clock)"`
	BackhaulLatency time.Duration `knob:"backhaul_latency" flag:"backhaul-latency" default:"0s" min:"0s" usage:"one-way farm-cloud backhaul latency"`
}

// Kind is a field's parse/format type.
type Kind int

// Field kinds.
const (
	KindInt Kind = iota
	KindInt64
	KindBool
	KindString
	KindDuration
)

// Field describes one knob derived from the schema's struct tags.
type Field struct {
	// Name is the dotted path, e.g. "mqtt.flush_watermark".
	Name string
	// Section and Key split Name at the dot.
	Section, Key string
	// Flag is the command-line flag name.
	Flag string
	// Env is the environment variable name (SWAMP_MQTT_FLUSH_WATERMARK).
	Env string
	// Usage is the one-line help string.
	Usage string
	// Dynamic marks the field reloadable at runtime.
	Dynamic bool
	// Kind selects parsing/formatting.
	Kind Kind
	// Default is the literal default from the tag.
	Default string

	index          []int
	minSet, maxSet bool
	minVal, maxVal int64 // for numeric/duration kinds
	oneof          []string
}

var (
	registryOnce sync.Once
	registry     []*Field
	byName       map[string]*Field
	byFlag       map[string]*Field
)

var durationType = reflect.TypeOf(time.Duration(0))

// Fields returns every schema field, sorted by Name. The slice is shared:
// callers must not mutate it.
func Fields() []*Field {
	buildRegistry()
	return registry
}

// FieldByName returns the field with the given dotted name.
func FieldByName(name string) (*Field, bool) {
	buildRegistry()
	f, ok := byName[name]
	return f, ok
}

func buildRegistry() {
	registryOnce.Do(func() {
		byName = make(map[string]*Field)
		byFlag = make(map[string]*Field)
		ct := reflect.TypeOf(Config{})
		for si := 0; si < ct.NumField(); si++ {
			sf := ct.Field(si)
			section := sf.Tag.Get("section")
			if section == "" {
				panic("config: section struct without section tag: " + sf.Name)
			}
			st := sf.Type
			for fi := 0; fi < st.NumField(); fi++ {
				lf := st.Field(fi)
				key := lf.Tag.Get("knob")
				if key == "-" {
					// Opt-out for fields the registry cannot carry
					// (operator-keyed tables like tenant.Quotas); they
					// get bespoke load/validate handling instead.
					continue
				}
				if key == "" {
					panic("config: field without knob tag: " + section + "." + lf.Name)
				}
				f := &Field{
					Name:    section + "." + key,
					Section: section,
					Key:     key,
					Flag:    lf.Tag.Get("flag"),
					Env:     "SWAMP_" + strings.ToUpper(section) + "_" + strings.ToUpper(key),
					Usage:   lf.Tag.Get("usage"),
					Dynamic: lf.Tag.Get("dynamic") == "true",
					Default: lf.Tag.Get("default"),
					index:   []int{si, fi},
				}
				switch {
				case lf.Type == durationType:
					f.Kind = KindDuration
				case lf.Type.Kind() == reflect.Int:
					f.Kind = KindInt
				case lf.Type.Kind() == reflect.Int64:
					f.Kind = KindInt64
				case lf.Type.Kind() == reflect.Bool:
					f.Kind = KindBool
				case lf.Type.Kind() == reflect.String:
					f.Kind = KindString
				default:
					panic("config: unsupported field type " + lf.Type.String() + " for " + f.Name)
				}
				if tag, ok := lf.Tag.Lookup("min"); ok {
					f.minSet = true
					f.minVal = mustParseBound(f, tag)
				}
				if tag, ok := lf.Tag.Lookup("max"); ok {
					f.maxSet = true
					f.maxVal = mustParseBound(f, tag)
				}
				if tag, ok := lf.Tag.Lookup("oneof"); ok {
					f.oneof = strings.Split(tag, ",")
				}
				registry = append(registry, f)
				byName[f.Name] = f
				if f.Flag != "" {
					if dup, clash := byFlag[f.Flag]; clash {
						panic("config: duplicate flag " + f.Flag + " (" + dup.Name + ", " + f.Name + ")")
					}
					byFlag[f.Flag] = f
				}
			}
		}
		sort.Slice(registry, func(i, j int) bool { return registry[i].Name < registry[j].Name })
		// Sanity: defaults must parse and validate.
		c := &Config{}
		for _, f := range registry {
			if err := f.Set(c, f.Default); err != nil {
				panic("config: bad default for " + f.Name + ": " + err.Error())
			}
		}
	})
}

func mustParseBound(f *Field, tag string) int64 {
	switch f.Kind {
	case KindDuration:
		d, err := time.ParseDuration(tag)
		if err != nil {
			panic("config: bad duration bound on " + f.Name + ": " + tag)
		}
		return int64(d)
	case KindInt, KindInt64:
		n, err := strconv.ParseInt(tag, 10, 64)
		if err != nil {
			panic("config: bad numeric bound on " + f.Name + ": " + tag)
		}
		return n
	default:
		panic("config: bound tag on non-numeric field " + f.Name)
	}
}

// Default returns a Config with every field at its declared default.
func Default() *Config {
	buildRegistry()
	c := &Config{}
	for _, f := range registry {
		_ = f.Set(c, f.Default) // defaults are panic-checked at registry build
	}
	return c
}

func (f *Field) value(c *Config) reflect.Value {
	return reflect.ValueOf(c).Elem().FieldByIndex(f.index)
}

// Set parses raw per the field's kind and stores it into c. It does not
// validate bounds — Validate aggregates that across the whole config.
func (f *Field) Set(c *Config, raw string) error {
	v := f.value(c)
	switch f.Kind {
	case KindDuration:
		d, err := time.ParseDuration(strings.TrimSpace(raw))
		if err != nil {
			return fmt.Errorf("invalid duration %q (use Go syntax: 250ms, 2s, 5m)", raw)
		}
		v.SetInt(int64(d))
	case KindInt, KindInt64:
		n, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
		if err != nil {
			return fmt.Errorf("invalid integer %q", raw)
		}
		v.SetInt(n)
	case KindBool:
		b, err := strconv.ParseBool(strings.TrimSpace(raw))
		if err != nil {
			return fmt.Errorf("invalid boolean %q", raw)
		}
		v.SetBool(b)
	case KindString:
		v.SetString(raw)
	}
	return nil
}

// setAny stores a decoded JSON value (float64/bool/string) into c.
func (f *Field) setAny(c *Config, val any) error {
	switch tv := val.(type) {
	case string:
		if f.Kind == KindString || f.Kind == KindDuration {
			return f.Set(c, tv)
		}
		return f.Set(c, tv) // numeric/bool strings parse too
	case bool:
		if f.Kind != KindBool {
			return fmt.Errorf("expected %s, got boolean", f.kindName())
		}
		f.value(c).SetBool(tv)
		return nil
	case float64:
		switch f.Kind {
		case KindInt, KindInt64:
			if tv != float64(int64(tv)) {
				return fmt.Errorf("expected integer, got %v", tv)
			}
			f.value(c).SetInt(int64(tv))
			return nil
		case KindDuration:
			return fmt.Errorf("durations are strings (e.g. \"250ms\"), got number %v", tv)
		default:
			return fmt.Errorf("expected %s, got number", f.kindName())
		}
	default:
		return fmt.Errorf("unsupported value type %T", val)
	}
}

// Get returns the field's current value as a comparable any.
func (f *Field) Get(c *Config) any {
	v := f.value(c)
	switch f.Kind {
	case KindDuration:
		return time.Duration(v.Int())
	case KindInt:
		return int(v.Int())
	case KindInt64:
		return v.Int()
	case KindBool:
		return v.Bool()
	default:
		return v.String()
	}
}

// Format renders the field's current value the way a config file would
// spell it.
func (f *Field) Format(c *Config) string {
	switch val := f.Get(c).(type) {
	case time.Duration:
		return fmt.Sprintf("%q", val.String())
	case string:
		return fmt.Sprintf("%q", val)
	default:
		return fmt.Sprint(val)
	}
}

func (f *Field) kindName() string {
	switch f.Kind {
	case KindDuration:
		return "duration string"
	case KindInt, KindInt64:
		return "integer"
	case KindBool:
		return "boolean"
	default:
		return "string"
	}
}

// validate checks one field's bounds against the config.
func (f *Field) validate(c *Config) error {
	switch f.Kind {
	case KindInt, KindInt64, KindDuration:
		n := f.value(c).Int()
		if f.minSet && n < f.minVal {
			return fmt.Errorf("%s is below minimum %s", f.formatVal(n), f.formatVal(f.minVal))
		}
		if f.maxSet && n > f.maxVal {
			return fmt.Errorf("%s is above maximum %s", f.formatVal(n), f.formatVal(f.maxVal))
		}
	case KindString:
		if len(f.oneof) > 0 {
			s := f.value(c).String()
			for _, ok := range f.oneof {
				if s == ok {
					return nil
				}
			}
			return fmt.Errorf("%q is not one of %s", f.value(c).String(), strings.Join(f.oneof, ", "))
		}
	}
	return nil
}

func (f *Field) formatVal(n int64) string {
	if f.Kind == KindDuration {
		return time.Duration(n).String()
	}
	return strconv.FormatInt(n, 10)
}
