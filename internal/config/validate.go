package config

import (
	"fmt"
	"strings"
)

// FieldError is one validation or parse failure, attributed to a knob.
type FieldError struct {
	// Name is the dotted knob name, or the raw file key for unknown keys.
	Name string
	// Err is the underlying failure.
	Err error
}

func (e FieldError) Error() string { return e.Name + ": " + e.Err.Error() }

// Errors aggregates every violation found in one pass, so a bad config
// file reports all its problems at once instead of one per restart.
type Errors []FieldError

func (e Errors) Error() string {
	if len(e) == 0 {
		return "config: no errors"
	}
	lines := make([]string, len(e))
	for i, fe := range e {
		lines[i] = "  " + fe.Error()
	}
	return fmt.Sprintf("config: %d invalid setting(s):\n%s", len(e), strings.Join(lines, "\n"))
}

// or returns nil when empty, so callers can return it directly.
func (e Errors) or() error {
	if len(e) == 0 {
		return nil
	}
	return e
}

// Validate checks every field's declared bounds plus the cross-field
// rules, aggregating all violations into one Errors value.
func Validate(c *Config) error {
	var errs Errors
	for _, f := range Fields() {
		if err := f.validate(c); err != nil {
			errs = append(errs, FieldError{Name: f.Name, Err: err})
		}
	}
	// Cross-field rules.
	if c.HTTP.DefaultLimit > c.HTTP.QueryCap {
		errs = append(errs, FieldError{
			Name: "http.default_limit",
			Err:  fmt.Errorf("%d exceeds http.query_cap %d", c.HTTP.DefaultLimit, c.HTTP.QueryCap),
		})
	}
	if c.Timeseries.Retention > 0 && c.Timeseries.EvictionInterval > c.Timeseries.Retention {
		errs = append(errs, FieldError{
			Name: "timeseries.eviction_interval",
			Err: fmt.Errorf("%s exceeds the retention window %s",
				c.Timeseries.EvictionInterval, c.Timeseries.Retention),
		})
	}
	if c.Cluster.MinISR > c.Cluster.Replicas-1 {
		errs = append(errs, FieldError{
			Name: "cluster.min_isr",
			Err: fmt.Errorf("%d exceeds the follower count (cluster.replicas %d includes the leader)",
				c.Cluster.MinISR, c.Cluster.Replicas),
		})
	}
	errs = append(errs, validateQuotas(c)...)
	if c.Cluster.NodeID != "" {
		if c.Cluster.Peers == "" {
			errs = append(errs, FieldError{
				Name: "cluster.peers",
				Err:  fmt.Errorf("required when cluster.node_id is set"),
			})
		} else if !strings.Contains(c.Cluster.Peers, c.Cluster.NodeID+"=") {
			errs = append(errs, FieldError{
				Name: "cluster.peers",
				Err:  fmt.Errorf("must include this node (%s=host:port)", c.Cluster.NodeID),
			})
		}
		if c.Cluster.Listen == "" {
			errs = append(errs, FieldError{
				Name: "cluster.listen",
				Err:  fmt.Errorf("required when cluster.node_id is set"),
			})
		}
		if c.WAL.Dir == "" {
			errs = append(errs, FieldError{
				Name: "wal.dir",
				Err:  fmt.Errorf("replication ships WAL segments; clustering requires a durable WAL"),
			})
		}
	}
	return errs.or()
}

// Diff returns the names of every field whose value differs between the
// two configs, sorted (Fields() is sorted by name).
func Diff(old, new *Config) []string {
	var out []string
	for _, f := range Fields() {
		if f.Get(old) != f.Get(new) {
			out = append(out, f.Name)
		}
	}
	return out
}

// ValidateReload implements the validate-then-swap reload protocol: it
// validates the candidate config, then partitions the changed fields into
// dynamic (applicable live) and static (require a restart). Any static
// change — or any validation failure — rejects the whole reload with an
// aggregated error, and the caller applies nothing.
func ValidateReload(current, candidate *Config) (dynamic []string, err error) {
	var errs Errors
	if verr := Validate(candidate); verr != nil {
		errs = append(errs, verr.(Errors)...)
	}
	for _, name := range Diff(current, candidate) {
		f, _ := FieldByName(name)
		if f.Dynamic {
			dynamic = append(dynamic, name)
			continue
		}
		errs = append(errs, FieldError{
			Name: name,
			Err: fmt.Errorf("static field changed (%s -> %s); restart required",
				f.Format(current), f.Format(candidate)),
		})
	}
	// [tenant.quotas] overrides live outside the registry; any change to
	// the table is dynamic by design (quota retuning is the reload's
	// primary use case).
	dynamic = append(dynamic, diffQuotas(current, candidate)...)
	if len(errs) > 0 {
		return nil, errs
	}
	return dynamic, nil
}
