package config

import (
	"fmt"
	"strings"
)

// parseTOML parses the TOML subset the config schema needs: [section]
// tables, key = value pairs (basic strings, integers, booleans; durations
// are quoted strings), full-line and trailing # comments. It returns
// section → key → raw value, where raw string values are already
// unquoted. Anything fancier (arrays, nested tables, multi-line strings)
// is a parse error — the schema has no use for it, and rejecting beats
// silently misreading.
func parseTOML(src string) (map[string]map[string]string, error) {
	out := make(map[string]map[string]string)
	section := ""
	for lineNo, line := range strings.Split(src, "\n") {
		ln := strings.TrimSpace(stripComment(line))
		if ln == "" {
			continue
		}
		if strings.HasPrefix(ln, "[") {
			if !strings.HasSuffix(ln, "]") {
				return nil, fmt.Errorf("line %d: malformed table header %q", lineNo+1, ln)
			}
			section = strings.TrimSpace(ln[1 : len(ln)-1])
			if section == "" || strings.ContainsAny(section, "[]\"'") {
				return nil, fmt.Errorf("line %d: malformed table name %q", lineNo+1, ln)
			}
			if out[section] == nil {
				out[section] = make(map[string]string)
			}
			continue
		}
		eq := strings.Index(ln, "=")
		if eq < 0 {
			return nil, fmt.Errorf("line %d: expected key = value, got %q", lineNo+1, ln)
		}
		key := strings.TrimSpace(ln[:eq])
		if key == "" || strings.ContainsAny(key, " \t\"'") {
			return nil, fmt.Errorf("line %d: malformed key %q", lineNo+1, ln)
		}
		val, err := parseTOMLValue(strings.TrimSpace(ln[eq+1:]))
		if err != nil {
			return nil, fmt.Errorf("line %d: %s: %w", lineNo+1, key, err)
		}
		if section == "" {
			return nil, fmt.Errorf("line %d: key %q outside any [section]", lineNo+1, key)
		}
		if _, dup := out[section][key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %s.%s", lineNo+1, section, key)
		}
		out[section][key] = val
	}
	return out, nil
}

// stripComment removes a trailing # comment, respecting double quotes.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case '\\':
			if inStr {
				i++ // skip the escaped char
			}
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

// parseTOMLValue unquotes a basic string or passes a bare scalar through
// (validated later against the field's kind).
func parseTOMLValue(v string) (string, error) {
	if v == "" {
		return "", fmt.Errorf("missing value")
	}
	if v[0] == '"' {
		if len(v) < 2 || v[len(v)-1] != '"' {
			return "", fmt.Errorf("unterminated string %s", v)
		}
		body := v[1 : len(v)-1]
		// Minimal escape handling: \" \\ \t \n.
		if strings.ContainsRune(body, '\\') {
			var b strings.Builder
			for i := 0; i < len(body); i++ {
				if body[i] != '\\' {
					b.WriteByte(body[i])
					continue
				}
				i++
				if i >= len(body) {
					return "", fmt.Errorf("dangling escape in %s", v)
				}
				switch body[i] {
				case '"', '\\':
					b.WriteByte(body[i])
				case 't':
					b.WriteByte('\t')
				case 'n':
					b.WriteByte('\n')
				default:
					return "", fmt.Errorf("unsupported escape \\%c", body[i])
				}
			}
			body = b.String()
		} else if strings.ContainsRune(body, '"') {
			return "", fmt.Errorf("unescaped quote in %s", v)
		}
		return body, nil
	}
	if v[0] == '\'' || v[0] == '[' || v[0] == '{' {
		return "", fmt.Errorf("unsupported TOML value %s (only basic strings, integers and booleans)", v)
	}
	return v, nil
}
