package anomaly

import (
	"fmt"
	"sync"
	"time"
)

// SequenceProfiler learns the expected order of application events — the
// paper's "understand and correlate the expected sequence of events and
// behavior of agriculture applications". During a learning phase it records
// which event transitions occur (e.g. plan → command → flow-rise →
// moisture-rise); after sealing, transitions never seen in the baseline
// raise alerts (e.g. flow-rise with no preceding command = hijacked
// actuator; command at 3am from a new issuer = compromised account).
type SequenceProfiler struct {
	mu          sync.Mutex
	transitions map[string]map[string]int
	last        map[string]string // per-context previous event
	sealed      bool
}

// NewSequenceProfiler starts in learning mode.
func NewSequenceProfiler() *SequenceProfiler {
	return &SequenceProfiler{
		transitions: make(map[string]map[string]int),
		last:        make(map[string]string),
	}
}

// Seal ends the learning phase; subsequent unseen transitions alert.
func (p *SequenceProfiler) Seal() {
	p.mu.Lock()
	p.sealed = true
	p.mu.Unlock()
}

// Sealed reports whether learning has ended.
func (p *SequenceProfiler) Sealed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sealed
}

// Observe feeds one event for a context (a device, a zone, a pilot). In
// learning mode it extends the baseline and never alerts; sealed, it
// alerts on transitions with zero baseline support.
func (p *SequenceProfiler) Observe(context, event string, at time.Time) *Alert {
	p.mu.Lock()
	defer p.mu.Unlock()
	prev, seen := p.last[context]
	p.last[context] = event
	if !seen {
		prev = "<start>"
	}
	if !p.sealed {
		m := p.transitions[prev]
		if m == nil {
			m = make(map[string]int)
			p.transitions[prev] = m
		}
		m[event]++
		return nil
	}
	if p.transitions[prev][event] > 0 {
		return nil
	}
	return &Alert{
		At: at, Kind: "sequence", Device: context, Score: 1,
		Detail: fmt.Sprintf("unexpected transition %q → %q", prev, event),
	}
}

// TransitionCount returns the learned support for a transition.
func (p *SequenceProfiler) TransitionCount(from, to string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.transitions[from][to]
}
