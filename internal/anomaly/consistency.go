package anomaly

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// ConsistencyConfig tunes the cross-sensor consistency detector.
type ConsistencyConfig struct {
	// MinPeers is the minimum number of other sensors of the same quantity
	// needed before judging (default 4). Below that, the "partial view"
	// problem the paper warns about makes cross-checking unreliable.
	MinPeers int
	// K is the robust z-score (MAD-based) alarm threshold (default 5).
	K float64
	// MinSpread floors the robust scale estimate. With few peers the MAD
	// is an unstable estimator and can collapse toward zero by chance,
	// exploding the z-score; set MinSpread to the known sensor noise scale
	// (e.g. 0.008 m³/m³ for soil probes) to bound false positives.
	MinSpread float64
	// Cooldown suppresses repeated alerts per device (default 1m).
	Cooldown time.Duration
}

func (c *ConsistencyConfig) defaults() {
	if c.MinPeers <= 0 {
		c.MinPeers = 4
	}
	if c.K <= 0 {
		c.K = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Minute
	}
}

// ConsistencyDetector cross-checks each sensor against the population of
// sensors measuring the same quantity in the same deployment: a reading far
// from the robust consensus (median ± K·MAD) is flagged. This catches the
// §III value-tampering attack even when the attacker keeps the series
// internally smooth (defeating the per-series EWMA baseline).
type ConsistencyDetector struct {
	cfg ConsistencyConfig

	mu        sync.Mutex
	latest    map[string]map[string]float64 // quantity -> device -> last value
	lastAlert map[string]time.Time
}

// NewConsistencyDetector builds a detector.
func NewConsistencyDetector(cfg ConsistencyConfig) *ConsistencyDetector {
	cfg.defaults()
	return &ConsistencyDetector{
		cfg:       cfg,
		latest:    make(map[string]map[string]float64),
		lastAlert: make(map[string]time.Time),
	}
}

// Observe feeds one (device, quantity, value) sample.
func (d *ConsistencyDetector) Observe(device, quantity string, v float64, at time.Time) *Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	byDev := d.latest[quantity]
	if byDev == nil {
		byDev = make(map[string]float64)
		d.latest[quantity] = byDev
	}
	// Collect peer values (excluding this device) before updating.
	peers := make([]float64, 0, len(byDev))
	for dev, pv := range byDev {
		if dev != device {
			peers = append(peers, pv)
		}
	}
	byDev[device] = v
	if len(peers) < d.cfg.MinPeers {
		return nil
	}
	med := median(peers)
	// 1.4826·MAD ≈ σ for normal data; floor it per config.
	spread := 1.4826 * medianAbsDev(peers, med)
	if spread < d.cfg.MinSpread {
		spread = d.cfg.MinSpread
	}
	if spread < 1e-9 {
		spread = 1e-9
	}
	z := math.Abs(v-med) / spread
	if z <= d.cfg.K {
		return nil
	}
	if at.Sub(d.lastAlert[device]) < d.cfg.Cooldown {
		return nil
	}
	d.lastAlert[device] = at
	return &Alert{
		At: at, Kind: "consistency", Device: device, Score: z,
		Detail: fmt.Sprintf("%s=%.4g vs consensus %.4g (spread %.4g, %d peers)",
			quantity, v, med, spread, len(peers)),
	}
}

// PeerCount returns how many devices currently report quantity.
func (d *ConsistencyDetector) PeerCount(quantity string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.latest[quantity])
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func medianAbsDev(xs []float64, med float64) float64 {
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return median(devs)
}
