package anomaly

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/model"
)

var t0 = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

func TestEWMALearnsThenDetectsSpike(t *testing.T) {
	d := NewEWMADetector(EWMAConfig{})
	rng := rand.New(rand.NewSource(1))
	// Learn a noisy baseline around 0.25.
	for i := 0; i < 100; i++ {
		v := 0.25 + rng.NormFloat64()*0.01
		if a := d.Observe("s1", v, t0.Add(time.Duration(i)*time.Minute)); a != nil {
			t.Fatalf("false positive during normal operation at %d: %+v", i, a)
		}
	}
	// A tampered value far off baseline must alert.
	a := d.Observe("s1", 0.55, t0.Add(101*time.Minute))
	if a == nil {
		t.Fatal("spike not detected")
	}
	if a.Kind != "deviation" || a.Score < 4 {
		t.Errorf("alert = %+v", a)
	}
	mean, sd, n := d.Baseline("s1")
	if n != 101 || mean < 0.2 || mean > 0.3 || sd <= 0 {
		t.Errorf("baseline = %g ± %g over %d", mean, sd, n)
	}
}

func TestEWMAWarmupSuppression(t *testing.T) {
	d := NewEWMADetector(EWMAConfig{Warmup: 10})
	// Wild values during warmup must not alert.
	for i := 0; i < 10; i++ {
		if a := d.Observe("s", float64(i*100), t0); a != nil {
			t.Fatalf("alert during warmup: %+v", a)
		}
	}
}

func TestEWMAIndependentSeries(t *testing.T) {
	d := NewEWMADetector(EWMAConfig{})
	for i := 0; i < 50; i++ {
		d.Observe("a", 1.0, t0)
		d.Observe("b", 100.0, t0)
	}
	// b's level is normal for b, even though far from a's baseline.
	if a := d.Observe("b", 100.0, t0); a != nil {
		t.Errorf("cross-series contamination: %+v", a)
	}
}

func TestRateDetectorFlagsFlood(t *testing.T) {
	d := NewRateDetector(RateConfig{Window: 10 * time.Second, LimitPerSec: 5})
	// Normal device: 1 msg/s — no alert.
	for i := 0; i < 30; i++ {
		if a := d.Observe("dev", t0.Add(time.Duration(i)*time.Second)); a != nil {
			t.Fatalf("false positive at normal rate: %+v", a)
		}
	}
	// Flood: 100 msgs in one second.
	var alert *Alert
	floodStart := t0.Add(time.Minute)
	for i := 0; i < 100; i++ {
		if a := d.Observe("flooder", floodStart.Add(time.Duration(i)*10*time.Millisecond)); a != nil {
			alert = a
			break
		}
	}
	if alert == nil {
		t.Fatal("flood not detected")
	}
	if alert.Kind != "dos" || alert.Device != "flooder" {
		t.Errorf("alert = %+v", alert)
	}
}

func TestRateDetectorCooldown(t *testing.T) {
	d := NewRateDetector(RateConfig{Window: time.Second, LimitPerSec: 1, Cooldown: time.Minute})
	alerts := 0
	for i := 0; i < 1000; i++ {
		if a := d.Observe("f", t0.Add(time.Duration(i)*time.Millisecond)); a != nil {
			alerts++
		}
	}
	if alerts != 1 {
		t.Errorf("cooldown allowed %d alerts in one burst", alerts)
	}
}

func TestRateDetectorWindowSlides(t *testing.T) {
	d := NewRateDetector(RateConfig{Window: 10 * time.Second, LimitPerSec: 5})
	for i := 0; i < 80; i++ {
		d.Observe("dev", t0.Add(time.Duration(i)*125*time.Millisecond)) // 8/s for 10s
	}
	// After a long quiet gap the windowed rate must fall to ~0.
	if r := d.Rate("dev", t0.Add(time.Hour)); r != 0 {
		t.Errorf("rate after quiet hour = %g", r)
	}
}

func TestStuckDetector(t *testing.T) {
	d := NewStuckDetector(StuckConfig{Window: 5})
	var got *Alert
	for i := 0; i < 10; i++ {
		if a := d.Observe("s", 0.42, t0.Add(time.Duration(i)*time.Minute)); a != nil {
			if got != nil {
				t.Fatal("stuck alerted twice for one episode")
			}
			got = a
		}
	}
	if got == nil || got.Kind != "stuck" {
		t.Fatalf("stuck not detected: %+v", got)
	}
	// Changing value resets the episode; a new freeze alerts again.
	d.Observe("s", 0.43, t0)
	count := 0
	for i := 0; i < 10; i++ {
		if a := d.Observe("s", 0.43, t0); a != nil {
			count++
		}
	}
	if count != 1 {
		t.Errorf("second episode alerts = %d, want 1", count)
	}
	// A healthy noisy series never alerts.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if a := d.Observe("healthy", rng.Float64(), t0); a != nil {
			t.Fatalf("noisy series flagged stuck: %+v", a)
		}
	}
}

func TestConsistencyDetectorCrossChecks(t *testing.T) {
	d := NewConsistencyDetector(ConsistencyConfig{MinPeers: 4, K: 5})
	rng := rand.New(rand.NewSource(3))
	// Ten honest probes around 0.25.
	for round := 0; round < 5; round++ {
		for i := 0; i < 10; i++ {
			dev := fmt.Sprintf("p%d", i)
			v := 0.25 + rng.NormFloat64()*0.01
			if a := d.Observe(dev, "soilMoisture", v, t0); a != nil {
				t.Fatalf("honest probe flagged: %+v", a)
			}
		}
	}
	// One probe starts lying smoothly (reads dry when field is wet).
	a := d.Observe("p3", "soilMoisture", 0.08, t0.Add(time.Hour))
	if a == nil {
		t.Fatal("lying probe not flagged against consensus")
	}
	if a.Kind != "consistency" || a.Device != "p3" {
		t.Errorf("alert = %+v", a)
	}
	if d.PeerCount("soilMoisture") != 10 {
		t.Errorf("peer count = %d", d.PeerCount("soilMoisture"))
	}
}

func TestConsistencyNeedsPeers(t *testing.T) {
	d := NewConsistencyDetector(ConsistencyConfig{MinPeers: 4})
	// With only two devices, the partial view forbids judgement.
	d.Observe("a", "q", 0.2, t0)
	d.Observe("b", "q", 0.2, t0)
	if a := d.Observe("a", "q", 99, t0); a != nil {
		t.Errorf("alerted with insufficient peers: %+v", a)
	}
}

func TestSybilDetectorFlagsClones(t *testing.T) {
	d := NewSybilDetector(SybilConfig{MinSamples: 5, MinClusterSize: 3})
	rng := rand.New(rand.NewSource(4))
	// Honest devices: same signal, independent noise.
	for i := 0; i < 6; i++ {
		dev := fmt.Sprintf("honest-%d", i)
		for k := 0; k < 10; k++ {
			d.Observe(dev, 0.3+rng.NormFloat64()*0.02, t0.Add(time.Duration(k)*time.Minute))
		}
	}
	// Sybil swarm: 4 identities, identical streams.
	for k := 0; k < 10; k++ {
		v := 0.3 + rng.NormFloat64()*0.02
		for i := 0; i < 4; i++ {
			d.Observe(fmt.Sprintf("sybil-%d", i), v, t0.Add(time.Duration(k)*time.Minute))
		}
	}
	alerts := d.Scan(t0.Add(time.Hour))
	if len(alerts) != 4 {
		t.Fatalf("alerts = %d, want the 4 sybil identities (%+v)", len(alerts), alerts)
	}
	for _, a := range alerts {
		if a.Kind != "sybil" || a.Device[:5] != "sybil" {
			t.Errorf("honest device flagged: %+v", a)
		}
	}
	if !d.Flagged("sybil-0") || d.Flagged("honest-0") {
		t.Error("flag state wrong")
	}
	// Second scan does not re-report.
	if again := d.Scan(t0.Add(2 * time.Hour)); len(again) != 0 {
		t.Errorf("rescan re-reported %d alerts", len(again))
	}
}

func TestSybilYoungWindowSeparates(t *testing.T) {
	d := NewSybilDetector(SybilConfig{MinSamples: 3, MinClusterSize: 2, YoungWindow: time.Minute})
	// Two identical streams, but first-seen an hour apart → not clustered.
	for k := 0; k < 5; k++ {
		d.Observe("old", 0.5, t0.Add(time.Duration(k)*time.Second))
	}
	for k := 0; k < 5; k++ {
		d.Observe("new", 0.5, t0.Add(time.Hour).Add(time.Duration(k)*time.Second))
	}
	if alerts := d.Scan(t0.Add(2 * time.Hour)); len(alerts) != 0 {
		t.Errorf("devices an hour apart clustered: %+v", alerts)
	}
}

func TestSequenceProfiler(t *testing.T) {
	p := NewSequenceProfiler()
	// Learn the normal irrigation loop.
	for i := 0; i < 10; i++ {
		p.Observe("zone1", "plan", t0)
		p.Observe("zone1", "command", t0)
		p.Observe("zone1", "flow-rise", t0)
		p.Observe("zone1", "moisture-rise", t0)
	}
	if p.TransitionCount("plan", "command") != 10 {
		t.Errorf("transition support = %d", p.TransitionCount("plan", "command"))
	}
	p.Seal()
	if !p.Sealed() {
		t.Error("not sealed")
	}
	// Normal sequence: silent.
	for _, ev := range []string{"plan", "command", "flow-rise", "moisture-rise"} {
		if a := p.Observe("zone1", ev, t0); a != nil {
			t.Fatalf("normal event %q alerted: %+v", ev, a)
		}
	}
	// Hijack: flow rises without a command.
	p.Observe("zone1", "plan", t0)
	a := p.Observe("zone1", "flow-rise", t0)
	if a == nil || a.Kind != "sequence" {
		t.Fatalf("rogue transition not flagged: %+v", a)
	}
}

func TestEngineEndToEnd(t *testing.T) {
	var alerts []Alert
	e := NewEngine(EngineConfig{
		Rate:        RateConfig{Window: time.Second, LimitPerSec: 10},
		Consistency: ConsistencyConfig{MinPeers: 3},
		Sink:        func(a Alert) { alerts = append(alerts, a) },
	})
	// Flood through the message path.
	for i := 0; i < 100; i++ {
		e.OnMessage("attacker", "swamp/x", nil, t0.Add(time.Duration(i)*time.Millisecond))
	}
	// Stuck series through the reading path.
	for i := 0; i < 20; i++ {
		e.OnReading(model.Reading{Device: "frozen", Quantity: model.QSoilMoisture, Value: 0.2, At: t0})
	}
	if len(alerts) < 2 {
		t.Fatalf("alerts = %+v", alerts)
	}
	counts := e.CountByKind()
	if counts["dos"] == 0 || counts["stuck"] == 0 {
		t.Errorf("counts = %v", counts)
	}
	if e.Metrics().Counter("anomaly.alerts.dos").Value() == 0 {
		t.Error("dos metric not incremented")
	}
	if len(e.Recent()) != len(alerts) {
		t.Errorf("recent log %d != emitted %d", len(e.Recent()), len(alerts))
	}
}

func TestEngineSybilScan(t *testing.T) {
	var alerts []Alert
	e := NewEngine(EngineConfig{
		Sybil: SybilConfig{MinSamples: 3, MinClusterSize: 3},
		Sink:  func(a Alert) { alerts = append(alerts, a) },
	})
	for k := 0; k < 5; k++ {
		for i := 0; i < 3; i++ {
			e.OnReading(model.Reading{
				Device: model.DeviceID(fmt.Sprintf("clone-%d", i)), Quantity: model.QNDVI,
				Value: 0.8, At: t0.Add(time.Duration(k) * time.Minute),
			})
		}
	}
	e.ScanSybil(t0.Add(time.Hour))
	if len(alerts) != 3 {
		t.Fatalf("sybil alerts = %d", len(alerts))
	}
	if !e.Sybil().Flagged("clone-0") {
		t.Error("clone not flagged")
	}
}
