// Package anomaly implements the SWAMP security-analytics layer the paper
// calls its most relevant challenge (§III): building a behavioral baseline
// of "what the application normally does" so that attacks — DoS floods,
// tampered sensor values, stuck or fake devices, Sybil swarms, rogue
// command sequences — can be separated from normal agricultural behaviour,
// even though the platform only ever has a partial view of the environment.
//
// The package is transport-agnostic: the platform feeds it broker traffic
// (Engine.OnMessage) and decoded readings (Engine.OnReading), and detectors
// emit Alerts through a Sink.
package anomaly

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Alert is one detection event.
type Alert struct {
	At     time.Time
	Kind   string // "dos", "deviation", "stuck", "consistency", "sybil", "sequence"
	Device string
	Score  float64 // detector-specific magnitude (z-score, rate ratio, …)
	Detail string
}

// Sink consumes alerts. Sinks must be fast; heavy work belongs elsewhere.
type Sink func(Alert)

// EWMAConfig tunes the per-series deviation detector.
type EWMAConfig struct {
	// Alpha is the EWMA smoothing factor (default 0.05).
	Alpha float64
	// K is the z-score alarm threshold (default 4).
	K float64
	// Warmup is how many samples to learn before alarming (default 20).
	Warmup int
}

func (c *EWMAConfig) defaults() {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.05
	}
	if c.K <= 0 {
		c.K = 4
	}
	if c.Warmup <= 0 {
		c.Warmup = 20
	}
}

// EWMADetector keeps an exponentially weighted mean/variance per series and
// flags samples whose z-score exceeds K — the workhorse for detecting
// tampered (biased or spiking) sensor values against each sensor's own
// baseline.
type EWMADetector struct {
	cfg EWMAConfig

	mu     sync.Mutex
	states map[string]*ewmaState
}

type ewmaState struct {
	mean, variance float64
	n              int
}

// NewEWMADetector builds a detector.
func NewEWMADetector(cfg EWMAConfig) *EWMADetector {
	cfg.defaults()
	return &EWMADetector{cfg: cfg, states: make(map[string]*ewmaState)}
}

// Observe feeds one sample; it returns a non-nil alert when the sample
// deviates. The sample still updates the baseline (slowly, by alpha), so a
// persistent attacker shifts the baseline only gradually.
func (d *EWMADetector) Observe(series string, v float64, at time.Time) *Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.states[series]
	if st == nil {
		st = &ewmaState{mean: v, variance: 0}
		d.states[series] = st
		st.n = 1
		return nil
	}
	st.n++
	var alert *Alert
	if st.n > d.cfg.Warmup {
		sd := math.Sqrt(st.variance)
		if sd < 1e-9 {
			sd = 1e-9
		}
		z := math.Abs(v-st.mean) / sd
		if z > d.cfg.K {
			alert = &Alert{
				At: at, Kind: "deviation", Device: series, Score: z,
				Detail: fmt.Sprintf("value %.4g vs baseline %.4g±%.4g", v, st.mean, sd),
			}
		}
	}
	diff := v - st.mean
	incr := d.cfg.Alpha * diff
	st.mean += incr
	st.variance = (1 - d.cfg.Alpha) * (st.variance + diff*incr)
	return alert
}

// Baseline returns the learned (mean, stddev, samples) for a series.
func (d *EWMADetector) Baseline(series string) (mean, sd float64, n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.states[series]
	if st == nil {
		return 0, 0, 0
	}
	return st.mean, math.Sqrt(st.variance), st.n
}

// RateConfig tunes the DoS detector.
type RateConfig struct {
	// Window is the sliding measurement window (default 10s).
	Window time.Duration
	// LimitPerSec is the per-client alarm rate (default 10 msgs/s).
	LimitPerSec float64
	// Cooldown suppresses repeat alerts per client (default = Window).
	Cooldown time.Duration
}

func (c *RateConfig) defaults() {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.LimitPerSec <= 0 {
		c.LimitPerSec = 10
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Window
	}
}

// RateDetector counts per-client messages in a sliding window and alarms
// when the rate exceeds the limit — the §III DoS-on-the-broker scenario.
type RateDetector struct {
	cfg RateConfig

	mu      sync.Mutex
	buckets map[string]*rateBucket
}

type rateBucket struct {
	times     []time.Time // ring of arrival times within window
	lastAlert time.Time
}

// NewRateDetector builds a detector.
func NewRateDetector(cfg RateConfig) *RateDetector {
	cfg.defaults()
	return &RateDetector{cfg: cfg, buckets: make(map[string]*rateBucket)}
}

// Observe records one message arrival for client and reports an alert when
// the client's windowed rate is excessive.
func (d *RateDetector) Observe(client string, at time.Time) *Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.buckets[client]
	if b == nil {
		b = &rateBucket{}
		d.buckets[client] = b
	}
	cutoff := at.Add(-d.cfg.Window)
	// Drop expired arrivals (slice is in arrival order).
	i := 0
	for i < len(b.times) && b.times[i].Before(cutoff) {
		i++
	}
	b.times = append(b.times[i:], at)
	rate := float64(len(b.times)) / d.cfg.Window.Seconds()
	if rate > d.cfg.LimitPerSec && at.Sub(b.lastAlert) >= d.cfg.Cooldown {
		b.lastAlert = at
		return &Alert{
			At: at, Kind: "dos", Device: client, Score: rate / d.cfg.LimitPerSec,
			Detail: fmt.Sprintf("%.1f msg/s over %v (limit %.1f)", rate, d.cfg.Window, d.cfg.LimitPerSec),
		}
	}
	return nil
}

// Rate returns the client's current windowed rate, for dashboards.
func (d *RateDetector) Rate(client string, now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.buckets[client]
	if b == nil {
		return 0
	}
	cutoff := now.Add(-d.cfg.Window)
	n := 0
	for _, t := range b.times {
		if !t.Before(cutoff) {
			n++
		}
	}
	return float64(n) / d.cfg.Window.Seconds()
}

// StuckConfig tunes the stuck-sensor detector.
type StuckConfig struct {
	// Window is how many consecutive identical samples trip the alarm
	// (default 12).
	Window int
	// Epsilon is the equality tolerance (default 1e-9).
	Epsilon float64
}

func (c *StuckConfig) defaults() {
	if c.Window <= 0 {
		c.Window = 12
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-9
	}
}

// StuckDetector flags series that repeat the same value — a failed or
// tampered-to-constant sensor that would silently freeze irrigation
// decisions.
type StuckDetector struct {
	cfg StuckConfig

	mu     sync.Mutex
	states map[string]*stuckState
}

type stuckState struct {
	last    float64
	repeats int
	alerted bool
}

// NewStuckDetector builds a detector.
func NewStuckDetector(cfg StuckConfig) *StuckDetector {
	cfg.defaults()
	return &StuckDetector{cfg: cfg, states: make(map[string]*stuckState)}
}

// Observe feeds one sample; it alarms once per stuck episode.
func (d *StuckDetector) Observe(series string, v float64, at time.Time) *Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.states[series]
	if st == nil {
		d.states[series] = &stuckState{last: v, repeats: 1}
		return nil
	}
	if math.Abs(v-st.last) <= d.cfg.Epsilon {
		st.repeats++
	} else {
		st.last = v
		st.repeats = 1
		st.alerted = false
	}
	if st.repeats >= d.cfg.Window && !st.alerted {
		st.alerted = true
		return &Alert{
			At: at, Kind: "stuck", Device: series, Score: float64(st.repeats),
			Detail: fmt.Sprintf("value %.4g repeated %d times", v, st.repeats),
		}
	}
	return nil
}
