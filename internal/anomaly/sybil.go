package anomaly

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// SybilConfig tunes the Sybil-swarm detector.
type SybilConfig struct {
	// YoungWindow: only devices first seen within this window of each
	// other are clustered (Sybil identities appear together; default 5m).
	YoungWindow time.Duration
	// MinSamples per device before it participates in clustering
	// (default 5).
	MinSamples int
	// SimilarityEps: two devices are "same-source" when the mean absolute
	// difference of their aligned recent samples is below this (default
	// 0.005 — tighter than genuine sensor noise allows).
	SimilarityEps float64
	// MinClusterSize: smallest cluster reported (default 3).
	MinClusterSize int
	// HistoryLen: samples retained per device (default 16).
	HistoryLen int
}

func (c *SybilConfig) defaults() {
	if c.YoungWindow <= 0 {
		c.YoungWindow = 5 * time.Minute
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.SimilarityEps <= 0 {
		c.SimilarityEps = 0.005
	}
	if c.MinClusterSize <= 0 {
		c.MinClusterSize = 3
	}
	if c.HistoryLen <= 0 {
		c.HistoryLen = 16
	}
}

// SybilDetector hunts for groups of identities that (a) appeared around
// the same time and (b) report suspiciously identical value streams — the
// signature of one attacker fabricating many virtual sensors or drones
// (§III: "a drone or sensor node performing the Sybil attack could send
// fake images and false measurements").
//
// Genuine co-located sensors agree on the signal but disagree in the noise;
// Sybil replicas share both.
type SybilDetector struct {
	cfg SybilConfig

	mu      sync.Mutex
	devices map[string]*sybilDevice
	flagged map[string]bool
}

type sybilDevice struct {
	firstSeen time.Time
	values    []float64 // ring, newest last
}

// NewSybilDetector builds a detector.
func NewSybilDetector(cfg SybilConfig) *SybilDetector {
	cfg.defaults()
	return &SybilDetector{cfg: cfg, devices: make(map[string]*sybilDevice), flagged: make(map[string]bool)}
}

// Observe feeds one sample from a device.
func (d *SybilDetector) Observe(device string, v float64, at time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dev := d.devices[device]
	if dev == nil {
		dev = &sybilDevice{firstSeen: at}
		d.devices[device] = dev
	}
	dev.values = append(dev.values, v)
	if len(dev.values) > d.cfg.HistoryLen {
		dev.values = dev.values[len(dev.values)-d.cfg.HistoryLen:]
	}
}

// Scan clusters candidate devices and returns one alert per newly flagged
// Sybil group member. Call it periodically (the Engine does).
func (d *SybilDetector) Scan(now time.Time) []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()

	// Candidates: enough samples, not yet flagged.
	ids := make([]string, 0, len(d.devices))
	for id, dev := range d.devices {
		if len(dev.values) >= d.cfg.MinSamples && !d.flagged[id] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)

	// Union-find over similar pairs with close first-seen times.
	parent := make(map[string]string, len(ids))
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, id := range ids {
		parent[id] = id
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := d.devices[ids[i]], d.devices[ids[j]]
			dt := a.firstSeen.Sub(b.firstSeen)
			if dt < 0 {
				dt = -dt
			}
			if dt > d.cfg.YoungWindow {
				continue
			}
			if similar(a.values, b.values, d.cfg.SimilarityEps) {
				parent[find(ids[i])] = find(ids[j])
			}
		}
	}
	clusters := make(map[string][]string)
	for _, id := range ids {
		root := find(id)
		clusters[root] = append(clusters[root], id)
	}

	var alerts []Alert
	roots := make([]string, 0, len(clusters))
	for r := range clusters {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	for _, root := range roots {
		members := clusters[root]
		if len(members) < d.cfg.MinClusterSize {
			continue
		}
		sort.Strings(members)
		for _, id := range members {
			d.flagged[id] = true
			alerts = append(alerts, Alert{
				At: now, Kind: "sybil", Device: id, Score: float64(len(members)),
				Detail: fmt.Sprintf("cluster of %d near-identical young identities", len(members)),
			})
		}
	}
	return alerts
}

// Flagged reports whether a device has been identified as a Sybil member.
func (d *SybilDetector) Flagged(device string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flagged[device]
}

// similar reports whether two aligned sample tails agree within eps on
// average.
func similar(a, b []float64, eps float64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return false
	}
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += math.Abs(a[len(a)-i] - b[len(b)-i])
	}
	return sum/float64(n) < eps
}
