package anomaly

import (
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/model"
)

// EngineConfig assembles the detection stack.
type EngineConfig struct {
	EWMA        EWMAConfig
	Rate        RateConfig
	Stuck       StuckConfig
	Consistency ConsistencyConfig
	Sybil       SybilConfig
	// Sink receives every alert; required.
	Sink Sink
	// Metrics receives counters; nil allocates a private registry.
	Metrics *metrics.Registry
}

// Engine fans platform telemetry into all detectors and funnels their
// alerts into one sink with per-kind counters. It is the component a SWAMP
// deployment attaches to its broker Tap and its context notifications.
type Engine struct {
	ewma    *EWMADetector
	rate    *RateDetector
	stuck   *StuckDetector
	consist *ConsistencyDetector
	sybil   *SybilDetector
	seq     *SequenceProfiler

	sink Sink
	reg  *metrics.Registry

	mu     sync.Mutex
	recent []Alert
	maxLog int
}

// NewEngine builds the full stack.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.Sink == nil {
		cfg.Sink = func(Alert) {}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	e := &Engine{
		ewma:    NewEWMADetector(cfg.EWMA),
		rate:    NewRateDetector(cfg.Rate),
		stuck:   NewStuckDetector(cfg.Stuck),
		consist: NewConsistencyDetector(cfg.Consistency),
		sybil:   NewSybilDetector(cfg.Sybil),
		seq:     NewSequenceProfiler(),
		sink:    cfg.Sink,
		reg:     cfg.Metrics,
		maxLog:  4096,
	}
	return e
}

// Metrics returns the engine's registry.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Sequence exposes the sequence profiler for the platform to feed
// decision-loop events into.
func (e *Engine) Sequence() *SequenceProfiler { return e.seq }

// Sybil exposes the Sybil detector (for Flagged lookups).
func (e *Engine) Sybil() *SybilDetector { return e.sybil }

// Rate exposes the rate detector (for dashboard rates).
func (e *Engine) Rate() *RateDetector { return e.rate }

// EWMA exposes the deviation detector (for baseline inspection).
func (e *Engine) EWMA() *EWMADetector { return e.ewma }

// OnMessage is wired to the MQTT broker Tap: every publish counts toward
// the client's rate.
func (e *Engine) OnMessage(clientID, topic string, payload []byte, at time.Time) {
	if a := e.rate.Observe(clientID, at); a != nil {
		e.emit(*a)
	}
}

// OnReading is fed every decoded northbound reading.
func (e *Engine) OnReading(r model.Reading) {
	series := string(r.Device) + "/" + string(r.Quantity)
	if a := e.ewma.Observe(series, r.Value, r.At); a != nil {
		e.emit(*a)
	}
	if a := e.stuck.Observe(series, r.Value, r.At); a != nil {
		e.emit(*a)
	}
	if a := e.consist.Observe(string(r.Device), string(r.Quantity), r.Value, r.At); a != nil {
		e.emit(*a)
	}
	e.sybil.Observe(string(r.Device), r.Value, r.At)
}

// OnEvent feeds one decision-loop event to the sequence profiler.
func (e *Engine) OnEvent(context, event string, at time.Time) {
	if a := e.seq.Observe(context, event, at); a != nil {
		e.emit(*a)
	}
}

// ScanSybil runs a Sybil clustering pass; call periodically.
func (e *Engine) ScanSybil(now time.Time) {
	for _, a := range e.sybil.Scan(now) {
		e.emit(a)
	}
}

func (e *Engine) emit(a Alert) {
	e.reg.Counter("anomaly.alerts." + a.Kind).Inc()
	e.mu.Lock()
	e.recent = append(e.recent, a)
	if len(e.recent) > e.maxLog {
		e.recent = append(e.recent[:0], e.recent[len(e.recent)-e.maxLog:]...)
	}
	e.mu.Unlock()
	e.sink(a)
}

// Recent returns a copy of recent alerts, oldest first.
func (e *Engine) Recent() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Alert(nil), e.recent...)
}

// CountByKind summarises alert counts per kind.
func (e *Engine) CountByKind() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]int)
	for _, a := range e.recent {
		out[a.Kind]++
	}
	return out
}
