package anomaly

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestSlowPoisonEvadesEWMAButNotConsistency documents the layered-defense
// rationale: an attacker who drifts a sensor's value slower than the EWMA
// adaptation rate never trips the per-series baseline (the baseline drifts
// with the attack), but the cross-sensor consistency check still catches
// the sensor once it diverges from its honest peers. This is why the
// engine runs both.
func TestSlowPoisonEvadesEWMAButNotConsistency(t *testing.T) {
	ewma := NewEWMADetector(EWMAConfig{})
	consist := NewConsistencyDetector(ConsistencyConfig{MinPeers: 5, K: 5, MinSpread: 0.008})
	rng := rand.New(rand.NewSource(9))
	at := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

	// Warm up both detectors with honest traffic.
	for k := 0; k < 100; k++ {
		v := 0.25 + rng.NormFloat64()*0.01
		if a := ewma.Observe("victim", v, at); a != nil {
			t.Fatalf("false positive during warmup: %+v", a)
		}
		for i := 0; i < 8; i++ {
			consist.Observe(fmt.Sprintf("p%d", i), "m", 0.25+rng.NormFloat64()*0.01, at)
		}
		consist.Observe("victim", "m", v, at)
		at = at.Add(time.Minute)
	}

	// Slow poison: +0.0005 per sample — far below the 4σ EWMA threshold at
	// every individual step.
	var ewmaAlert, consistAlert *Alert
	drift := 0.0
	for k := 0; k < 400; k++ {
		drift += 0.0005
		v := 0.25 + drift + rng.NormFloat64()*0.01
		if a := ewma.Observe("victim", v, at); a != nil && ewmaAlert == nil {
			ewmaAlert = a
		}
		for i := 0; i < 8; i++ {
			consist.Observe(fmt.Sprintf("p%d", i), "m", 0.25+rng.NormFloat64()*0.01, at)
		}
		if a := consist.Observe("victim", "m", v, at); a != nil && consistAlert == nil {
			consistAlert = a
		}
		at = at.Add(time.Minute)
	}
	if consistAlert == nil {
		t.Error("consistency layer missed the slow poison entirely")
	}
	// The point of the test is the contrast: consistency fires while the
	// drifted value is still early; EWMA may fire eventually but only
	// after the divergence is already large.
	if ewmaAlert != nil && consistAlert != nil && ewmaAlert.At.Before(consistAlert.At) {
		t.Errorf("EWMA (%v) beat consistency (%v) on a slow drift — unexpected ordering",
			ewmaAlert.At, consistAlert.At)
	}
}

// TestSequenceProfilerPerContext: contexts learn independent baselines.
func TestSequenceProfilerPerContext(t *testing.T) {
	p := NewSequenceProfiler()
	for i := 0; i < 5; i++ {
		p.Observe("zoneA", "plan", time.Now())
		p.Observe("zoneA", "command", time.Now())
		p.Observe("zoneB", "survey", time.Now())
		p.Observe("zoneB", "report", time.Now())
	}
	p.Seal()
	// zoneB's vocabulary is fine for zoneB...
	if a := p.Observe("zoneB", "survey", time.Now()); a != nil {
		t.Errorf("zoneB normal transition flagged: %+v", a)
	}
	// Transitions are global per (from,to) pair: "command" -> "survey" was
	// never learned anywhere, so a cross-vocabulary jump alerts.
	p.Observe("zoneA", "command", time.Now())
	if a := p.Observe("zoneA", "report", time.Now()); a == nil {
		t.Error("unlearned transition not flagged")
	}
}
