package model

import (
	"fmt"
	"math"
)

// GeoPoint is a WGS84 coordinate. For the small field extents SWAMP deals
// with (hundreds of metres) we use an equirectangular approximation for
// distances, which is accurate to well under a metre at that scale.
type GeoPoint struct {
	Lat float64
	Lon float64
}

// earthRadiusM is the mean Earth radius used by DistanceM.
const earthRadiusM = 6_371_000.0

// DistanceM returns the approximate ground distance in metres between p and q.
func (p GeoPoint) DistanceM(q GeoPoint) float64 {
	latRad := (p.Lat + q.Lat) / 2 * math.Pi / 180
	dLat := (q.Lat - p.Lat) * math.Pi / 180
	dLon := (q.Lon - p.Lon) * math.Pi / 180
	x := dLon * math.Cos(latRad)
	return earthRadiusM * math.Hypot(dLat, x)
}

// Offset returns the point reached by moving dx metres east and dy metres
// north from p.
func (p GeoPoint) Offset(dxM, dyM float64) GeoPoint {
	dLat := dyM / earthRadiusM * 180 / math.Pi
	dLon := dxM / (earthRadiusM * math.Cos(p.Lat*math.Pi/180)) * 180 / math.Pi
	return GeoPoint{Lat: p.Lat + dLat, Lon: p.Lon + dLon}
}

// FieldGrid discretizes a rectangular field into Rows x Cols square cells of
// CellSizeM metres. It is the spatial substrate shared by the soil model
// (one water balance per cell), the drone imagery (one NDVI pixel per cell)
// and the VRI controller (sectors map onto cells).
type FieldGrid struct {
	Origin    GeoPoint // south-west corner
	Rows      int
	Cols      int
	CellSizeM float64
}

// NewFieldGrid validates and constructs a grid.
func NewFieldGrid(origin GeoPoint, rows, cols int, cellSizeM float64) (FieldGrid, error) {
	if rows <= 0 || cols <= 0 {
		return FieldGrid{}, fmt.Errorf("field grid: non-positive dimensions %dx%d", rows, cols)
	}
	if cellSizeM <= 0 {
		return FieldGrid{}, fmt.Errorf("field grid: non-positive cell size %g", cellSizeM)
	}
	return FieldGrid{Origin: origin, Rows: rows, Cols: cols, CellSizeM: cellSizeM}, nil
}

// NumCells returns Rows*Cols.
func (g FieldGrid) NumCells() int { return g.Rows * g.Cols }

// CellIndex converts (row, col) to a flat index, or -1 if out of range.
func (g FieldGrid) CellIndex(row, col int) int {
	if row < 0 || row >= g.Rows || col < 0 || col >= g.Cols {
		return -1
	}
	return row*g.Cols + col
}

// CellRC converts a flat index back to (row, col).
func (g FieldGrid) CellRC(idx int) (row, col int) {
	return idx / g.Cols, idx % g.Cols
}

// CellCenter returns the geographic centre of cell (row, col).
func (g FieldGrid) CellCenter(row, col int) GeoPoint {
	dx := (float64(col) + 0.5) * g.CellSizeM
	dy := (float64(row) + 0.5) * g.CellSizeM
	return g.Origin.Offset(dx, dy)
}

// CellAt returns the flat cell index containing p, or -1 if p is outside
// the grid.
func (g FieldGrid) CellAt(p GeoPoint) int {
	// Invert Offset using the same equirectangular approximation.
	dLat := (p.Lat - g.Origin.Lat) * math.Pi / 180
	dLon := (p.Lon - g.Origin.Lon) * math.Pi / 180
	dy := dLat * earthRadiusM
	dx := dLon * earthRadiusM * math.Cos(g.Origin.Lat*math.Pi/180)
	col := int(math.Floor(dx / g.CellSizeM))
	row := int(math.Floor(dy / g.CellSizeM))
	return g.CellIndex(row, col)
}

// AreaHa returns the grid area in hectares.
func (g FieldGrid) AreaHa() float64 {
	return float64(g.NumCells()) * g.CellSizeM * g.CellSizeM / 10_000
}

// Neighbors returns the flat indices of the 4-connected neighbours of idx
// that lie inside the grid. Used by the spatial-consistency tamper detector.
func (g FieldGrid) Neighbors(idx int) []int {
	row, col := g.CellRC(idx)
	out := make([]int, 0, 4)
	for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
		if n := g.CellIndex(row+d[0], col+d[1]); n >= 0 {
			out = append(out, n)
		}
	}
	return out
}
