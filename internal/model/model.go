// Package model holds the shared domain types of the SWAMP platform:
// telemetry readings, device descriptors, physical quantities and field
// geometry. Every other package speaks in terms of these types so that the
// transport (MQTT), context (NGSI) and decision (irrigation) layers agree on
// a single vocabulary.
package model

import (
	"fmt"
	"math"
	"time"

	"github.com/swamp-project/swamp/internal/tenant"
)

// DeviceID uniquely identifies a device (sensor, actuator, drone or fog
// node) inside one SWAMP deployment. IDs are assigned at provisioning time
// by the IoT agent and embedded in every reading the device publishes.
type DeviceID string

// DeviceKind classifies the hardware role of a device.
type DeviceKind int

// Device kinds. Starting at 1 so that the zero value is invalid and
// accidental zero-valued descriptors are caught by Validate.
const (
	KindUnknown DeviceKind = iota
	KindSoilProbe
	KindWeatherStation
	KindFlowMeter
	KindPivotEncoder
	KindDrone
	KindValveActuator
	KindPumpActuator
	KindGateActuator
	KindFogNode
)

var kindNames = map[DeviceKind]string{
	KindUnknown:        "unknown",
	KindSoilProbe:      "soil-probe",
	KindWeatherStation: "weather-station",
	KindFlowMeter:      "flow-meter",
	KindPivotEncoder:   "pivot-encoder",
	KindDrone:          "drone",
	KindValveActuator:  "valve-actuator",
	KindPumpActuator:   "pump-actuator",
	KindGateActuator:   "gate-actuator",
	KindFogNode:        "fog-node",
}

// String implements fmt.Stringer.
func (k DeviceKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("device-kind(%d)", int(k))
}

// IsActuator reports whether the kind commands physical equipment rather
// than sensing it.
func (k DeviceKind) IsActuator() bool {
	switch k {
	case KindValveActuator, KindPumpActuator, KindGateActuator:
		return true
	}
	return false
}

// Quantity names a physical quantity carried by a reading. The set is open:
// pilots may add their own, but the constants below cover everything the
// built-in device simulators emit.
type Quantity string

// Quantities produced by the built-in device simulators.
const (
	QSoilMoisture  Quantity = "soilMoisture" // volumetric water content, m3/m3
	QSoilTemp      Quantity = "soilTemperature"
	QAirTemp       Quantity = "airTemperature" // Celsius
	QHumidity      Quantity = "relativeHumidity"
	QSolarRad      Quantity = "solarRadiation" // MJ/m2/day
	QWindSpeed     Quantity = "windSpeed"      // m/s at 2m
	QRainfall      Quantity = "rainfall"       // mm
	QFlowRate      Quantity = "flowRate"       // m3/h
	QPivotAngle    Quantity = "pivotAngle"     // degrees
	QBattery       Quantity = "batteryLevel"   // fraction 0..1
	QNDVI          Quantity = "ndvi"           // unitless -1..1
	QValveState    Quantity = "valveState"     // 0 closed, 1 open
	QAppliedDepth  Quantity = "appliedDepth"   // mm of irrigation applied
	QEnergy        Quantity = "energyUsed"     // kWh
	QWaterConsumed Quantity = "waterConsumed"  // m3
)

// Reading is a single timestamped measurement (or actuator state report)
// from one device. Depth is only meaningful for soil probes and is zero
// otherwise.
type Reading struct {
	Device   DeviceID
	Quantity Quantity
	Value    float64
	Unit     string
	Depth    float64 // metres below surface, soil probes only
	Location GeoPoint
	At       time.Time
}

// Validate reports the first structural problem with the reading, or nil.
func (r Reading) Validate() error {
	switch {
	case r.Device == "":
		return fmt.Errorf("reading: empty device id")
	case r.Quantity == "":
		return fmt.Errorf("reading %s: empty quantity", r.Device)
	case math.IsNaN(r.Value) || math.IsInf(r.Value, 0):
		return fmt.Errorf("reading %s/%s: non-finite value", r.Device, r.Quantity)
	case r.At.IsZero():
		return fmt.Errorf("reading %s/%s: zero timestamp", r.Device, r.Quantity)
	}
	return nil
}

// Descriptor is the provisioning record for a device: identity, role and
// placement. The IoT agent stores one per provisioned device and tags all
// northbound traffic with it.
type Descriptor struct {
	ID       DeviceID
	Kind     DeviceKind
	Owner    tenant.ID // farmer / tenant that owns the data (paper §III)
	Location GeoPoint
	Depths   []float64 // for multi-depth soil probes
	APIKey   string    // shared key used on the southbound transport
}

// Validate reports the first structural problem with the descriptor.
func (d Descriptor) Validate() error {
	switch {
	case d.ID == "":
		return fmt.Errorf("descriptor: empty device id")
	case d.Kind == KindUnknown:
		return fmt.Errorf("descriptor %s: unknown kind", d.ID)
	case d.Owner == "":
		return fmt.Errorf("descriptor %s: empty owner", d.ID)
	}
	return nil
}

// Command is a southbound instruction to an actuator, e.g. "open valve 7 at
// 60%%" or "set pivot sector 12 rate to 8mm".
type Command struct {
	Target DeviceID
	Name   string  // actuator-specific verb: "setRate", "open", "close", ...
	Value  float64 // verb-specific magnitude
	Issuer string  // authenticated principal that issued the command
	At     time.Time
}

// Validate reports the first structural problem with the command.
func (c Command) Validate() error {
	switch {
	case c.Target == "":
		return fmt.Errorf("command: empty target")
	case c.Name == "":
		return fmt.Errorf("command %s: empty name", c.Target)
	case math.IsNaN(c.Value) || math.IsInf(c.Value, 0):
		return fmt.Errorf("command %s/%s: non-finite value", c.Target, c.Name)
	}
	return nil
}
