package model

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestReadingValidate(t *testing.T) {
	now := time.Now()
	good := Reading{Device: "d1", Quantity: QSoilMoisture, Value: 0.3, At: now}
	if err := good.Validate(); err != nil {
		t.Errorf("valid reading rejected: %v", err)
	}
	bad := []Reading{
		{Quantity: QSoilMoisture, Value: 1, At: now},
		{Device: "d", Value: 1, At: now},
		{Device: "d", Quantity: QAirTemp, Value: math.NaN(), At: now},
		{Device: "d", Quantity: QAirTemp, Value: math.Inf(1), At: now},
		{Device: "d", Quantity: QAirTemp, Value: 1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid reading accepted", i)
		}
	}
}

func TestDescriptorValidate(t *testing.T) {
	good := Descriptor{ID: "probe-1", Kind: KindSoilProbe, Owner: "farm-a"}
	if err := good.Validate(); err != nil {
		t.Errorf("valid descriptor rejected: %v", err)
	}
	for i, d := range []Descriptor{
		{Kind: KindSoilProbe, Owner: "o"},
		{ID: "x", Owner: "o"},
		{ID: "x", Kind: KindSoilProbe},
	} {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid descriptor accepted", i)
		}
	}
}

func TestCommandValidate(t *testing.T) {
	good := Command{Target: "valve-1", Name: "open", Value: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid command rejected: %v", err)
	}
	for i, c := range []Command{
		{Name: "open"},
		{Target: "v"},
		{Target: "v", Name: "open", Value: math.NaN()},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid command accepted", i)
		}
	}
}

func TestDeviceKindStringAndActuator(t *testing.T) {
	if KindSoilProbe.String() != "soil-probe" {
		t.Errorf("got %q", KindSoilProbe.String())
	}
	if DeviceKind(99).String() == "" {
		t.Error("unknown kind produced empty string")
	}
	if KindSoilProbe.IsActuator() {
		t.Error("soil probe is not an actuator")
	}
	for _, k := range []DeviceKind{KindValveActuator, KindPumpActuator, KindGateActuator} {
		if !k.IsActuator() {
			t.Errorf("%v should be an actuator", k)
		}
	}
}

func TestGeoDistanceAndOffset(t *testing.T) {
	p := GeoPoint{Lat: -12.15, Lon: -45.00} // MATOPIBA region
	q := p.Offset(100, 0)
	if d := p.DistanceM(q); math.Abs(d-100) > 0.1 {
		t.Errorf("100m east offset measured as %gm", d)
	}
	q = p.Offset(0, 250)
	if d := p.DistanceM(q); math.Abs(d-250) > 0.1 {
		t.Errorf("250m north offset measured as %gm", d)
	}
	if d := p.DistanceM(p); d != 0 {
		t.Errorf("self distance %g", d)
	}
}

// Property: Offset then CellAt round-trips for points inside the grid.
func TestGridCellAtRoundTrip(t *testing.T) {
	g, err := NewFieldGrid(GeoPoint{Lat: 44.6, Lon: 10.7}, 20, 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rowRaw, colRaw uint8) bool {
		row := int(rowRaw) % g.Rows
		col := int(colRaw) % g.Cols
		center := g.CellCenter(row, col)
		return g.CellAt(center) == g.CellIndex(row, col)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGridBasics(t *testing.T) {
	if _, err := NewFieldGrid(GeoPoint{}, 0, 5, 10); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := NewFieldGrid(GeoPoint{}, 5, 5, -1); err == nil {
		t.Error("negative cell size accepted")
	}
	g, err := NewFieldGrid(GeoPoint{Lat: 40, Lon: -1}, 4, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCells() != 20 {
		t.Errorf("NumCells = %d", g.NumCells())
	}
	if got := g.AreaHa(); math.Abs(got-5.0) > 1e-9 {
		t.Errorf("AreaHa = %g, want 5", got)
	}
	if g.CellIndex(-1, 0) != -1 || g.CellIndex(0, 5) != -1 {
		t.Error("out-of-range cell index not -1")
	}
	r, c := g.CellRC(13)
	if r != 2 || c != 3 {
		t.Errorf("CellRC(13) = (%d,%d)", r, c)
	}
	// Point outside the grid.
	if g.CellAt(GeoPoint{Lat: 41, Lon: -1}) != -1 {
		t.Error("far point mapped into grid")
	}
}

func TestGridNeighbors(t *testing.T) {
	g, _ := NewFieldGrid(GeoPoint{}, 3, 3, 10)
	center := g.CellIndex(1, 1)
	if n := g.Neighbors(center); len(n) != 4 {
		t.Errorf("center neighbors = %d, want 4", len(n))
	}
	corner := g.CellIndex(0, 0)
	if n := g.Neighbors(corner); len(n) != 2 {
		t.Errorf("corner neighbors = %d, want 2", len(n))
	}
}
