// Package anonymize implements the data-governance technique §III of the
// SWAMP paper recommends for data leaving a farmer's trust domain ("data
// anonymization is another helpful technique for data governance"): before
// telemetry is shared with the consortium, researchers or markets, device
// identities are pseudonymized with a keyed HMAC, locations are coarsened
// to a grid, and values can be released only as k-anonymous aggregates —
// so crop state can be studied without exposing which farm produced it
// (the commodity-market leakage scenario).
package anonymize

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"github.com/swamp-project/swamp/internal/model"
)

// Pseudonymizer replaces device identities with stable keyed pseudonyms.
// The same device always maps to the same pseudonym under one key, so
// longitudinal studies still work; without the key the mapping cannot be
// reversed or recomputed.
type Pseudonymizer struct {
	key []byte
	// LocationCellDeg coarsens coordinates to a lat/lon grid of this cell
	// size in degrees (default 0.05° ≈ 5 km). Zero keeps the default;
	// negative drops location entirely.
	LocationCellDeg float64
}

// NewPseudonymizer builds a pseudonymizer over a secret key (≥16 bytes).
func NewPseudonymizer(key []byte) (*Pseudonymizer, error) {
	if len(key) < 16 {
		return nil, fmt.Errorf("anonymize: key must be at least 16 bytes, got %d", len(key))
	}
	return &Pseudonymizer{key: append([]byte(nil), key...), LocationCellDeg: 0.05}, nil
}

// Pseudonym returns the stable pseudonym for a device id.
func (p *Pseudonymizer) Pseudonym(id model.DeviceID) string {
	mac := hmac.New(sha256.New, p.key)
	mac.Write([]byte(id))
	return "anon-" + hex.EncodeToString(mac.Sum(nil))[:16]
}

// Reading returns an anonymized copy: pseudonymous device, coarsened (or
// dropped) location, untouched measurement.
func (p *Pseudonymizer) Reading(r model.Reading) model.Reading {
	out := r
	out.Device = model.DeviceID(p.Pseudonym(r.Device))
	cell := p.LocationCellDeg
	if cell == 0 {
		cell = 0.05
	}
	if cell < 0 {
		out.Location = model.GeoPoint{}
	} else {
		out.Location = model.GeoPoint{
			Lat: math.Floor(r.Location.Lat/cell) * cell,
			Lon: math.Floor(r.Location.Lon/cell) * cell,
		}
	}
	return out
}

// Batch anonymizes a slice of readings.
func (p *Pseudonymizer) Batch(rs []model.Reading) []model.Reading {
	out := make([]model.Reading, len(rs))
	for i, r := range rs {
		out[i] = p.Reading(r)
	}
	return out
}

// AggregateRow is one k-anonymous release row: a quantity's statistics over
// at least K distinct devices.
type AggregateRow struct {
	Quantity model.Quantity
	Devices  int
	Count    int
	Min      float64
	Max      float64
	Mean     float64
}

// KAnonymousAggregate groups readings by quantity and releases statistics
// only for groups backed by at least k distinct devices; smaller groups
// are suppressed (returned in suppressed). This is the release form for
// cross-farm benchmarking without exposing any single farm.
func KAnonymousAggregate(rs []model.Reading, k int) (released []AggregateRow, suppressed []model.Quantity, err error) {
	if k < 2 {
		return nil, nil, fmt.Errorf("anonymize: k must be >= 2, got %d", k)
	}
	type acc struct {
		devices map[model.DeviceID]bool
		count   int
		min     float64
		max     float64
		sum     float64
	}
	groups := make(map[model.Quantity]*acc)
	for _, r := range rs {
		if err := r.Validate(); err != nil {
			return nil, nil, fmt.Errorf("anonymize: %w", err)
		}
		g := groups[r.Quantity]
		if g == nil {
			g = &acc{devices: make(map[model.DeviceID]bool), min: math.Inf(1), max: math.Inf(-1)}
			groups[r.Quantity] = g
		}
		g.devices[r.Device] = true
		g.count++
		g.sum += r.Value
		g.min = math.Min(g.min, r.Value)
		g.max = math.Max(g.max, r.Value)
	}
	quantities := make([]model.Quantity, 0, len(groups))
	for q := range groups {
		quantities = append(quantities, q)
	}
	sort.Slice(quantities, func(i, j int) bool { return quantities[i] < quantities[j] })
	for _, q := range quantities {
		g := groups[q]
		if len(g.devices) < k {
			suppressed = append(suppressed, q)
			continue
		}
		released = append(released, AggregateRow{
			Quantity: q, Devices: len(g.devices), Count: g.count,
			Min: g.min, Max: g.max, Mean: g.sum / float64(g.count),
		})
	}
	return released, suppressed, nil
}
