package anonymize

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/model"
)

func key() []byte { return []byte("0123456789abcdef0123456789abcdef") }

func TestPseudonymStableAndKeyed(t *testing.T) {
	p1, err := NewPseudonymizer(key())
	if err != nil {
		t.Fatal(err)
	}
	a := p1.Pseudonym("probe-1")
	b := p1.Pseudonym("probe-1")
	c := p1.Pseudonym("probe-2")
	if a != b {
		t.Error("pseudonym not stable")
	}
	if a == c {
		t.Error("different devices collide")
	}
	if !strings.HasPrefix(a, "anon-") || strings.Contains(a, "probe") {
		t.Errorf("pseudonym leaks identity: %q", a)
	}
	// Different key → different mapping.
	p2, _ := NewPseudonymizer([]byte("ffffffffffffffff0123456789abcdef"))
	if p2.Pseudonym("probe-1") == a {
		t.Error("pseudonym independent of key")
	}
	if _, err := NewPseudonymizer([]byte("short")); err == nil {
		t.Error("short key accepted")
	}
}

func TestReadingAnonymization(t *testing.T) {
	p, _ := NewPseudonymizer(key())
	r := model.Reading{
		Device: "probe-7", Quantity: model.QSoilMoisture, Value: 0.23,
		Location: model.GeoPoint{Lat: -12.15271, Lon: -45.00349}, At: time.Now(),
	}
	out := p.Reading(r)
	if out.Device == r.Device {
		t.Error("device id not pseudonymized")
	}
	if out.Value != r.Value || out.Quantity != r.Quantity {
		t.Error("measurement altered")
	}
	// Location coarsened to the 0.05° grid.
	if math.Abs(out.Location.Lat-(-12.20)) > 1e-9 || math.Abs(out.Location.Lon-(-45.05)) > 1e-9 {
		t.Errorf("location = %+v", out.Location)
	}
	// Original untouched.
	if r.Device != "probe-7" {
		t.Error("caller's reading mutated")
	}
	// Negative cell size drops location.
	p.LocationCellDeg = -1
	if got := p.Reading(r).Location; got != (model.GeoPoint{}) {
		t.Errorf("location not dropped: %+v", got)
	}
	if got := p.Batch([]model.Reading{r, r}); len(got) != 2 {
		t.Errorf("batch len %d", len(got))
	}
}

func TestKAnonymousAggregate(t *testing.T) {
	now := time.Now()
	mk := func(dev string, q model.Quantity, v float64) model.Reading {
		return model.Reading{Device: model.DeviceID(dev), Quantity: q, Value: v, At: now}
	}
	rs := []model.Reading{
		// soilMoisture: 3 devices → released at k=3.
		mk("a", model.QSoilMoisture, 0.2),
		mk("b", model.QSoilMoisture, 0.3),
		mk("c", model.QSoilMoisture, 0.4),
		mk("a", model.QSoilMoisture, 0.3),
		// airTemperature: 1 device → suppressed.
		mk("a", model.QAirTemp, 30),
	}
	released, suppressed, err := KAnonymousAggregate(rs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(released) != 1 || released[0].Quantity != model.QSoilMoisture {
		t.Fatalf("released = %+v", released)
	}
	row := released[0]
	if row.Devices != 3 || row.Count != 4 || row.Min != 0.2 || row.Max != 0.4 || row.Mean != 0.3 {
		t.Errorf("row = %+v", row)
	}
	if len(suppressed) != 1 || suppressed[0] != model.QAirTemp {
		t.Errorf("suppressed = %v", suppressed)
	}

	if _, _, err := KAnonymousAggregate(rs, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, _, err := KAnonymousAggregate([]model.Reading{{}}, 2); err == nil {
		t.Error("invalid reading accepted")
	}
}
