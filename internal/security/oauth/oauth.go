// Package oauth implements the OAuth 2.0 subset the SWAMP paper mandates
// for platform access ("the access to the platform must be allowed only for
// identified and authorized users, using FIWARE security generic enablers
// and the OAuth 2.0 protocol"): resource-owner-password and
// client-credentials grants, opaque bearer tokens, introspection,
// revocation and expiry.
//
// Introspect sits on every authenticated request, so the token store is
// built for lock-free reads: tokens live in a sync.Map (issue-once,
// read-mostly — exactly its sweet spot) and revocation is an atomic flag
// on the record, so neither a grant burst nor a revocation sweep stalls
// the read path. Expired and revoked records are reclaimed by
// PurgeExpired, either called directly or from the StartPurge loop the
// platform drives on its clock.
package oauth

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
	"github.com/swamp-project/swamp/internal/security/identity"
)

// Errors returned by the server.
var (
	ErrInvalidToken = errors.New("oauth: invalid token")
	ErrExpired      = errors.New("oauth: token expired")
	ErrRevoked      = errors.New("oauth: token revoked")
)

// Token is an issued bearer token.
type Token struct {
	Value     string
	Principal identity.Principal
	Scopes    []string
	IssuedAt  time.Time
	ExpiresAt time.Time
}

// HasScope reports whether the token carries scope (an empty scope list
// grants nothing beyond introspection).
func (t Token) HasScope(scope string) bool {
	for _, s := range t.Scopes {
		if s == scope {
			return true
		}
	}
	return false
}

// Config tunes the token server.
type Config struct {
	// TTL is the token lifetime (default 1h).
	TTL time.Duration
	// Clock drives expiry; nil means the wall clock.
	Clock clock.Clock
}

// Server issues and validates tokens against an identity store.
type Server struct {
	idm *identity.Store
	ttl time.Duration
	clk clock.Clock

	tokens sync.Map // token value -> *tokenRecord
	live   atomic.Int64

	purgeOnce sync.Once
	purgeDone chan struct{}
	purgeWG   sync.WaitGroup
}

type tokenRecord struct {
	token   Token
	revoked atomic.Bool
}

// NewServer constructs a token server over idm.
func NewServer(idm *identity.Store, cfg Config) *Server {
	if cfg.TTL <= 0 {
		cfg.TTL = time.Hour
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	return &Server{idm: idm, ttl: cfg.TTL, clk: cfg.Clock, purgeDone: make(chan struct{})}
}

// GrantPassword implements the resource-owner-password grant: it
// authenticates (id, secret) against the identity store and issues a token.
func (s *Server) GrantPassword(id, secret string, scopes ...string) (Token, error) {
	p, err := s.idm.Authenticate(id, secret)
	if err != nil {
		return Token{}, fmt.Errorf("oauth: password grant: %w", err)
	}
	return s.issue(p, scopes)
}

// GrantClientCredentials implements the client-credentials grant for
// service accounts and devices. The mechanics equal the password grant; the
// distinction is kept because audit trails record the grant type.
func (s *Server) GrantClientCredentials(clientID, clientSecret string, scopes ...string) (Token, error) {
	p, err := s.idm.Authenticate(clientID, clientSecret)
	if err != nil {
		return Token{}, fmt.Errorf("oauth: client-credentials grant: %w", err)
	}
	return s.issue(p, scopes)
}

func (s *Server) issue(p identity.Principal, scopes []string) (Token, error) {
	raw := make([]byte, 24)
	if _, err := rand.Read(raw); err != nil {
		return Token{}, fmt.Errorf("oauth: token entropy: %w", err)
	}
	now := s.clk.Now()
	tok := Token{
		Value:     hex.EncodeToString(raw),
		Principal: p,
		Scopes:    append([]string(nil), scopes...),
		IssuedAt:  now,
		ExpiresAt: now.Add(s.ttl),
	}
	s.tokens.Store(tok.Value, &tokenRecord{token: tok})
	s.live.Add(1)
	return tok, nil
}

// Introspect validates a bearer token value and returns the token. It is
// lock-free: one sync.Map read plus an atomic revocation check, so the
// hot authenticated path never contends with grants or revocations.
func (s *Server) Introspect(value string) (Token, error) {
	v, ok := s.tokens.Load(value)
	if !ok {
		return Token{}, ErrInvalidToken
	}
	rec := v.(*tokenRecord)
	if rec.revoked.Load() {
		return Token{}, ErrRevoked
	}
	if s.clk.Now().After(rec.token.ExpiresAt) {
		return Token{}, ErrExpired
	}
	return rec.token, nil
}

// Revoke invalidates a token immediately.
func (s *Server) Revoke(value string) error {
	v, ok := s.tokens.Load(value)
	if !ok {
		return ErrInvalidToken
	}
	v.(*tokenRecord).revoked.Store(true)
	return nil
}

// RevokePrincipal invalidates every live token of a principal — the
// response to a compromised device (§III actuator takeover).
func (s *Server) RevokePrincipal(principalID string) int {
	n := 0
	s.tokens.Range(func(_, v any) bool {
		rec := v.(*tokenRecord)
		if rec.token.Principal.ID == principalID && rec.revoked.CompareAndSwap(false, true) {
			n++
		}
		return true
	})
	return n
}

// PurgeExpired drops expired and revoked tokens, returning how many were
// removed. The StartPurge loop calls it periodically; it is also safe to
// call directly, concurrently with everything else.
func (s *Server) PurgeExpired() int {
	now := s.clk.Now()
	n := 0
	s.tokens.Range(func(k, v any) bool {
		rec := v.(*tokenRecord)
		if rec.revoked.Load() || now.After(rec.token.ExpiresAt) {
			// LoadAndDelete keeps the live count exact when two purge
			// passes race over the same record.
			if _, loaded := s.tokens.LoadAndDelete(k); loaded {
				s.live.Add(-1)
				n++
			}
		}
		return true
	})
	return n
}

// LiveTokens returns the number of stored (not yet purged) tokens.
func (s *Server) LiveTokens() int { return int(s.live.Load()) }

// StartPurge reclaims expired and revoked tokens every interval on the
// server's clock until Close. With a Sim clock, tests drive the loop via
// Advance.
func (s *Server) StartPurge(interval time.Duration) {
	if interval <= 0 {
		return
	}
	s.purgeWG.Add(1)
	go func() {
		defer s.purgeWG.Done()
		for {
			select {
			case <-s.purgeDone:
				return
			case <-s.clk.After(interval):
				s.PurgeExpired()
			}
		}
	}()
}

// Close stops the purge loop (if any). The server remains usable for
// issuing and validating tokens; only the background reclamation stops.
func (s *Server) Close() {
	s.purgeOnce.Do(func() { close(s.purgeDone) })
	s.purgeWG.Wait()
}
