// Package oauth implements the OAuth 2.0 subset the SWAMP paper mandates
// for platform access ("the access to the platform must be allowed only for
// identified and authorized users, using FIWARE security generic enablers
// and the OAuth 2.0 protocol"): resource-owner-password and
// client-credentials grants, opaque bearer tokens, introspection,
// revocation and expiry.
package oauth

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
	"github.com/swamp-project/swamp/internal/security/identity"
)

// Errors returned by the server.
var (
	ErrInvalidToken = errors.New("oauth: invalid token")
	ErrExpired      = errors.New("oauth: token expired")
	ErrRevoked      = errors.New("oauth: token revoked")
)

// Token is an issued bearer token.
type Token struct {
	Value     string
	Principal identity.Principal
	Scopes    []string
	IssuedAt  time.Time
	ExpiresAt time.Time
}

// HasScope reports whether the token carries scope (an empty scope list
// grants nothing beyond introspection).
func (t Token) HasScope(scope string) bool {
	for _, s := range t.Scopes {
		if s == scope {
			return true
		}
	}
	return false
}

// Config tunes the token server.
type Config struct {
	// TTL is the token lifetime (default 1h).
	TTL time.Duration
	// Clock drives expiry; nil means the wall clock.
	Clock clock.Clock
}

// Server issues and validates tokens against an identity store.
type Server struct {
	idm *identity.Store
	ttl time.Duration
	clk clock.Clock

	mu     sync.RWMutex
	tokens map[string]*tokenRecord
}

type tokenRecord struct {
	token   Token
	revoked bool
}

// NewServer constructs a token server over idm.
func NewServer(idm *identity.Store, cfg Config) *Server {
	if cfg.TTL <= 0 {
		cfg.TTL = time.Hour
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	return &Server{idm: idm, ttl: cfg.TTL, clk: cfg.Clock, tokens: make(map[string]*tokenRecord)}
}

// GrantPassword implements the resource-owner-password grant: it
// authenticates (id, secret) against the identity store and issues a token.
func (s *Server) GrantPassword(id, secret string, scopes ...string) (Token, error) {
	p, err := s.idm.Authenticate(id, secret)
	if err != nil {
		return Token{}, fmt.Errorf("oauth: password grant: %w", err)
	}
	return s.issue(p, scopes)
}

// GrantClientCredentials implements the client-credentials grant for
// service accounts and devices. The mechanics equal the password grant; the
// distinction is kept because audit trails record the grant type.
func (s *Server) GrantClientCredentials(clientID, clientSecret string, scopes ...string) (Token, error) {
	p, err := s.idm.Authenticate(clientID, clientSecret)
	if err != nil {
		return Token{}, fmt.Errorf("oauth: client-credentials grant: %w", err)
	}
	return s.issue(p, scopes)
}

func (s *Server) issue(p identity.Principal, scopes []string) (Token, error) {
	raw := make([]byte, 24)
	if _, err := rand.Read(raw); err != nil {
		return Token{}, fmt.Errorf("oauth: token entropy: %w", err)
	}
	now := s.clk.Now()
	tok := Token{
		Value:     hex.EncodeToString(raw),
		Principal: p,
		Scopes:    append([]string(nil), scopes...),
		IssuedAt:  now,
		ExpiresAt: now.Add(s.ttl),
	}
	s.mu.Lock()
	s.tokens[tok.Value] = &tokenRecord{token: tok}
	s.mu.Unlock()
	return tok, nil
}

// Introspect validates a bearer token value and returns the token.
func (s *Server) Introspect(value string) (Token, error) {
	s.mu.RLock()
	rec := s.tokens[value]
	s.mu.RUnlock()
	if rec == nil {
		return Token{}, ErrInvalidToken
	}
	if rec.revoked {
		return Token{}, ErrRevoked
	}
	if s.clk.Now().After(rec.token.ExpiresAt) {
		return Token{}, ErrExpired
	}
	return rec.token, nil
}

// Revoke invalidates a token immediately.
func (s *Server) Revoke(value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.tokens[value]
	if rec == nil {
		return ErrInvalidToken
	}
	rec.revoked = true
	return nil
}

// RevokePrincipal invalidates every live token of a principal — the
// response to a compromised device (§III actuator takeover).
func (s *Server) RevokePrincipal(principalID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, rec := range s.tokens {
		if rec.token.Principal.ID == principalID && !rec.revoked {
			rec.revoked = true
			n++
		}
	}
	return n
}

// PurgeExpired drops expired and revoked tokens, returning how many were
// removed. Call it periodically to bound memory.
func (s *Server) PurgeExpired() int {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for v, rec := range s.tokens {
		if rec.revoked || now.After(rec.token.ExpiresAt) {
			delete(s.tokens, v)
			n++
		}
	}
	return n
}

// LiveTokens returns the number of stored (not yet purged) tokens.
func (s *Server) LiveTokens() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tokens)
}
