package oauth

import (
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
)

// waitWaiters blocks until the sim clock has n registered timers — the
// only reliable way to know the purge loop has (re-)armed its After.
func waitWaiters(t *testing.T, sim *clock.Sim, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for sim.PendingWaiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("purge loop never armed %d timer(s)", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPurgeLoopReclaimsOnSimClock(t *testing.T) {
	sim := clock.NewSim(time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC))
	s := NewServer(newIDM(t), Config{TTL: 10 * time.Minute, Clock: sim})
	defer s.Close()
	s.StartPurge(30 * time.Second)
	waitWaiters(t, sim, 1)

	tok, err := s.GrantPassword("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	tok2, err := s.GrantPassword("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if s.LiveTokens() != 2 {
		t.Fatalf("live = %d, want 2", s.LiveTokens())
	}

	// One interval: nothing has expired, nothing is reclaimed.
	sim.Advance(31 * time.Second)
	waitWaiters(t, sim, 1) // loop re-armed => purge pass finished
	if s.LiveTokens() != 2 {
		t.Fatalf("live after first pass = %d, want 2", s.LiveTokens())
	}

	// Revoke one; the next pass reclaims it while the other stays.
	if err := s.Revoke(tok2.Value); err != nil {
		t.Fatal(err)
	}
	sim.Advance(31 * time.Second)
	waitWaiters(t, sim, 1)
	if s.LiveTokens() != 1 {
		t.Fatalf("live after revoke pass = %d, want 1", s.LiveTokens())
	}

	// Past the TTL the remaining token is expired and reclaimed too.
	sim.Advance(11 * time.Minute)
	waitWaiters(t, sim, 1)
	if s.LiveTokens() != 0 {
		t.Fatalf("live after expiry pass = %d, want 0", s.LiveTokens())
	}
	if _, err := s.Introspect(tok.Value); err != ErrInvalidToken {
		t.Fatalf("purged token introspects as %v, want ErrInvalidToken", err)
	}

	// Close stops the loop; further advances must not panic or purge.
	s.Close()
}

func TestPurgeLoopZeroIntervalIsNoop(t *testing.T) {
	sim := clock.NewSim(time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC))
	s := NewServer(newIDM(t), Config{TTL: time.Minute, Clock: sim})
	s.StartPurge(0)
	if sim.PendingWaiters() != 0 {
		t.Fatal("zero interval should not start a loop")
	}
	s.Close() // must not hang
}
