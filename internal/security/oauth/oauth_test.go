package oauth

import (
	"errors"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
	"github.com/swamp-project/swamp/internal/security/identity"
)

func newIDM(t *testing.T) *identity.Store {
	t.Helper()
	idm := identity.NewStore()
	if err := idm.Register(identity.Principal{ID: "alice", Roles: []identity.Role{identity.RoleFarmer}, Owner: "farm1"}, "pw"); err != nil {
		t.Fatal(err)
	}
	if err := idm.Register(identity.Principal{ID: "svc-irrigation", Roles: []identity.Role{identity.RoleService}}, "svc-secret"); err != nil {
		t.Fatal(err)
	}
	return idm
}

func TestPasswordGrantAndIntrospect(t *testing.T) {
	srv := NewServer(newIDM(t), Config{})
	tok, err := srv.GrantPassword("alice", "pw", "read", "write")
	if err != nil {
		t.Fatal(err)
	}
	if tok.Value == "" || len(tok.Value) != 48 {
		t.Errorf("token value %q", tok.Value)
	}
	got, err := srv.Introspect(tok.Value)
	if err != nil {
		t.Fatal(err)
	}
	if got.Principal.ID != "alice" || !got.HasScope("read") || got.HasScope("admin") {
		t.Errorf("introspected %+v", got)
	}
}

func TestGrantRejectsBadCredentials(t *testing.T) {
	srv := NewServer(newIDM(t), Config{})
	if _, err := srv.GrantPassword("alice", "wrong"); err == nil {
		t.Error("bad password granted")
	}
	if _, err := srv.GrantClientCredentials("ghost", "x"); err == nil {
		t.Error("unknown client granted")
	}
}

func TestClientCredentialsGrant(t *testing.T) {
	srv := NewServer(newIDM(t), Config{})
	tok, err := srv.GrantClientCredentials("svc-irrigation", "svc-secret", "command")
	if err != nil {
		t.Fatal(err)
	}
	if !tok.Principal.HasRole(identity.RoleService) {
		t.Error("service role missing")
	}
}

func TestTokenExpiry(t *testing.T) {
	sim := clock.NewSim(time.Date(2026, 6, 1, 12, 0, 0, 0, time.UTC))
	srv := NewServer(newIDM(t), Config{TTL: 10 * time.Minute, Clock: sim})
	tok, err := srv.GrantPassword("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Introspect(tok.Value); err != nil {
		t.Fatalf("fresh token rejected: %v", err)
	}
	sim.Advance(11 * time.Minute)
	if _, err := srv.Introspect(tok.Value); !errors.Is(err, ErrExpired) {
		t.Errorf("expired token: %v", err)
	}
}

func TestRevoke(t *testing.T) {
	srv := NewServer(newIDM(t), Config{})
	tok, _ := srv.GrantPassword("alice", "pw")
	if err := srv.Revoke(tok.Value); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Introspect(tok.Value); !errors.Is(err, ErrRevoked) {
		t.Errorf("revoked token: %v", err)
	}
	if err := srv.Revoke("nonexistent"); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("revoke unknown: %v", err)
	}
}

func TestRevokePrincipal(t *testing.T) {
	srv := NewServer(newIDM(t), Config{})
	t1, _ := srv.GrantPassword("alice", "pw")
	t2, _ := srv.GrantPassword("alice", "pw")
	t3, _ := srv.GrantClientCredentials("svc-irrigation", "svc-secret")
	if n := srv.RevokePrincipal("alice"); n != 2 {
		t.Errorf("revoked %d tokens, want 2", n)
	}
	for _, tok := range []Token{t1, t2} {
		if _, err := srv.Introspect(tok.Value); !errors.Is(err, ErrRevoked) {
			t.Errorf("alice token still valid: %v", err)
		}
	}
	if _, err := srv.Introspect(t3.Value); err != nil {
		t.Errorf("unrelated token revoked: %v", err)
	}
}

func TestPurgeExpired(t *testing.T) {
	sim := clock.NewSim(time.Unix(0, 0))
	srv := NewServer(newIDM(t), Config{TTL: time.Minute, Clock: sim})
	srv.GrantPassword("alice", "pw")
	tok2, _ := srv.GrantPassword("alice", "pw")
	srv.Revoke(tok2.Value)
	sim.Advance(2 * time.Minute)
	srv.GrantPassword("alice", "pw") // fresh
	if n := srv.PurgeExpired(); n != 2 {
		t.Errorf("purged %d, want 2", n)
	}
	if srv.LiveTokens() != 1 {
		t.Errorf("live = %d, want 1", srv.LiveTokens())
	}
}

func TestIntrospectUnknown(t *testing.T) {
	srv := NewServer(newIDM(t), Config{})
	if _, err := srv.Introspect("deadbeef"); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("unknown token: %v", err)
	}
}

func TestTokensAreUnique(t *testing.T) {
	srv := NewServer(newIDM(t), Config{})
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		tok, err := srv.GrantPassword("alice", "pw")
		if err != nil {
			t.Fatal(err)
		}
		if seen[tok.Value] {
			t.Fatal("duplicate token value issued")
		}
		seen[tok.Value] = true
	}
}
