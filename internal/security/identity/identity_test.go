package identity

import (
	"errors"
	"testing"
)

func TestRegisterAuthenticate(t *testing.T) {
	s := NewStore()
	p := Principal{ID: "alice", Roles: []Role{RoleFarmer}, Owner: "guaspari"}
	if err := s.Register(p, "grapes-2026"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Authenticate("alice", "grapes-2026")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "alice" || !got.HasRole(RoleFarmer) || got.Owner != "guaspari" {
		t.Errorf("principal = %+v", got)
	}
}

func TestAuthenticateFailures(t *testing.T) {
	s := NewStore()
	s.Register(Principal{ID: "bob", Roles: []Role{RoleDevice}}, "s3cret")

	if _, err := s.Authenticate("bob", "wrong"); !errors.Is(err, ErrBadCredential) {
		t.Errorf("wrong password: %v", err)
	}
	if _, err := s.Authenticate("nobody", "x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown user: %v", err)
	}
	if err := s.SetDisabled("bob", true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Authenticate("bob", "s3cret"); !errors.Is(err, ErrDisabled) {
		t.Errorf("disabled user: %v", err)
	}
	if err := s.SetDisabled("bob", false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Authenticate("bob", "s3cret"); err != nil {
		t.Errorf("re-enabled user: %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	s := NewStore()
	if err := s.Register(Principal{}, "x"); err == nil {
		t.Error("empty id accepted")
	}
	if err := s.Register(Principal{ID: "x"}, ""); err == nil {
		t.Error("empty secret accepted")
	}
	if err := s.Register(Principal{ID: "dup"}, "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(Principal{ID: "dup"}, "b"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate register: %v", err)
	}
}

func TestSetSecret(t *testing.T) {
	s := NewStore()
	s.Register(Principal{ID: "carol"}, "old")
	if err := s.SetSecret("carol", "new"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Authenticate("carol", "old"); err == nil {
		t.Error("old secret still valid after rotation")
	}
	if _, err := s.Authenticate("carol", "new"); err != nil {
		t.Errorf("new secret rejected: %v", err)
	}
	if err := s.SetSecret("ghost", "x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("rotate unknown: %v", err)
	}
	if err := s.SetSecret("carol", ""); err == nil {
		t.Error("empty new secret accepted")
	}
}

func TestGetDoesNotLeakMutableState(t *testing.T) {
	s := NewStore()
	s.Register(Principal{ID: "dave", Roles: []Role{RoleFarmer}}, "x")
	p, err := s.Get("dave")
	if err != nil {
		t.Fatal(err)
	}
	p.Roles[0] = RoleAdmin // mutate the copy
	again, _ := s.Get("dave")
	if again.HasRole(RoleAdmin) {
		t.Error("caller mutation escalated stored roles")
	}
}

func TestIDsSorted(t *testing.T) {
	s := NewStore()
	for _, id := range []string{"zeta", "alpha", "mid"} {
		s.Register(Principal{ID: id}, "x")
	}
	ids := s.IDs()
	if len(ids) != 3 || ids[0] != "alpha" || ids[2] != "zeta" {
		t.Errorf("ids = %v", ids)
	}
}

func TestHashDeterministicPerSalt(t *testing.T) {
	salt := []byte("0123456789abcdef")
	h1 := hashSecret("pw", salt)
	h2 := hashSecret("pw", salt)
	if string(h1) != string(h2) {
		t.Error("hash not deterministic")
	}
	if string(hashSecret("pw2", salt)) == string(h1) {
		t.Error("different secrets collide")
	}
	if string(hashSecret("pw", []byte("fedcba9876543210"))) == string(h1) {
		t.Error("different salts collide")
	}
}
