// Package identity is the SWAMP identity manager — the stand-in for the
// FIWARE Keyrock GE. It stores the principals of a deployment (farmers,
// agronomists, devices, platform services), their roles, their tenancy
// (which farm's data they own, §III "each owner controls their data") and
// their credentials, hashed with an iterated salted HMAC-SHA256.
package identity

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/swamp-project/swamp/internal/tenant"
)

// Role is a coarse authorization role attached to a principal.
type Role string

// Built-in roles used by the default SWAMP policy set.
const (
	RoleAdmin      Role = "admin"
	RoleFarmer     Role = "farmer"
	RoleAgronomist Role = "agronomist"
	RoleDevice     Role = "device"
	RoleService    Role = "service"
)

// Principal is an authenticated actor: user, device or service account.
type Principal struct {
	ID    string
	Roles []Role
	// Owner is the tenant (farm) whose data this principal belongs to —
	// the canonical principal→tenant mapping every ingress point
	// resolves admission and access control against.
	Owner    tenant.ID
	Disabled bool
}

// Tenant returns the principal's tenant identity.
func (p Principal) Tenant() tenant.ID { return p.Owner }

// HasRole reports whether the principal holds r.
func (p Principal) HasRole(r Role) bool {
	for _, have := range p.Roles {
		if have == r {
			return true
		}
	}
	return false
}

// Errors returned by the store.
var (
	ErrNotFound      = errors.New("identity: principal not found")
	ErrBadCredential = errors.New("identity: bad credential")
	ErrDisabled      = errors.New("identity: principal disabled")
	ErrExists        = errors.New("identity: principal already exists")
)

const (
	saltLen        = 16
	hashIterations = 1024
)

type record struct {
	principal Principal
	salt      []byte
	hash      []byte
}

// Store is the credential and principal database. Construct with NewStore.
// Safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	records map[string]*record
}

// NewStore returns an empty identity store.
func NewStore() *Store {
	return &Store{records: make(map[string]*record)}
}

// Register adds a principal with the given secret. Registering an existing
// id fails with ErrExists.
func (s *Store) Register(p Principal, secret string) error {
	if p.ID == "" {
		return fmt.Errorf("identity: empty principal id")
	}
	if secret == "" {
		return fmt.Errorf("identity: principal %q: empty secret", p.ID)
	}
	salt := make([]byte, saltLen)
	if _, err := rand.Read(salt); err != nil {
		return fmt.Errorf("identity: salt: %w", err)
	}
	rec := &record{principal: clonePrincipal(p), salt: salt, hash: hashSecret(secret, salt)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.records[p.ID]; dup {
		return fmt.Errorf("%w: %s", ErrExists, p.ID)
	}
	s.records[p.ID] = rec
	return nil
}

// Authenticate verifies (id, secret) and returns the principal.
func (s *Store) Authenticate(id, secret string) (Principal, error) {
	s.mu.RLock()
	rec := s.records[id]
	s.mu.RUnlock()
	if rec == nil {
		// Burn comparable time for unknown users to blunt enumeration.
		hashSecret(secret, make([]byte, saltLen))
		return Principal{}, ErrNotFound
	}
	if !hmac.Equal(rec.hash, hashSecret(secret, rec.salt)) {
		return Principal{}, fmt.Errorf("%w: %s", ErrBadCredential, id)
	}
	if rec.principal.Disabled {
		return Principal{}, fmt.Errorf("%w: %s", ErrDisabled, id)
	}
	return clonePrincipal(rec.principal), nil
}

// Get returns the principal without authenticating.
func (s *Store) Get(id string) (Principal, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec := s.records[id]
	if rec == nil {
		return Principal{}, ErrNotFound
	}
	return clonePrincipal(rec.principal), nil
}

// SetDisabled flips the disabled bit — the kill switch for a compromised
// device identity.
func (s *Store) SetDisabled(id string, disabled bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.records[id]
	if rec == nil {
		return ErrNotFound
	}
	rec.principal.Disabled = disabled
	return nil
}

// SetSecret rotates a principal's secret.
func (s *Store) SetSecret(id, secret string) error {
	if secret == "" {
		return fmt.Errorf("identity: principal %q: empty secret", id)
	}
	salt := make([]byte, saltLen)
	if _, err := rand.Read(salt); err != nil {
		return fmt.Errorf("identity: salt: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.records[id]
	if rec == nil {
		return ErrNotFound
	}
	rec.salt = salt
	rec.hash = hashSecret(secret, salt)
	return nil
}

// IDs returns all registered principal ids, sorted.
func (s *Store) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.records))
	for id := range s.records {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// hashSecret derives a verifier via iterated HMAC-SHA256 (PBKDF2-shaped,
// stdlib only).
func hashSecret(secret string, salt []byte) []byte {
	mac := hmac.New(sha256.New, salt)
	mac.Write([]byte(secret))
	sum := mac.Sum(nil)
	for i := 1; i < hashIterations; i++ {
		mac.Reset()
		mac.Write(sum)
		sum = mac.Sum(sum[:0])
	}
	return sum
}

func clonePrincipal(p Principal) Principal {
	cp := p
	cp.Roles = append([]Role(nil), p.Roles...)
	return cp
}
