package secchan

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func ring(t *testing.T, ids ...string) *KeyRing {
	t.Helper()
	k := NewKeyRing()
	for _, id := range ids {
		if _, err := k.Generate(id); err != nil {
			t.Fatal(err)
		}
	}
	return k
}

func TestSealOpenRoundTrip(t *testing.T) {
	k := ring(t, "probe-1")
	pt := []byte(`{"soilMoisture":0.23}`)
	aad := []byte("swamp/farm1/soil")
	env, err := k.Seal("probe-1", pt, aad)
	if err != nil {
		t.Fatal(err)
	}
	sender, seq, got, err := k.Open(env, aad)
	if err != nil {
		t.Fatal(err)
	}
	if sender != "probe-1" || seq != 1 || !bytes.Equal(got, pt) {
		t.Errorf("open = %q seq=%d %q", sender, seq, got)
	}
}

func TestSequenceIncrements(t *testing.T) {
	k := ring(t, "d")
	for want := uint64(1); want <= 5; want++ {
		env, err := k.Seal("d", []byte("x"), nil)
		if err != nil {
			t.Fatal(err)
		}
		_, seq, _, err := k.Open(env, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seq != want {
			t.Errorf("seq = %d, want %d", seq, want)
		}
	}
}

func TestTamperDetection(t *testing.T) {
	k := ring(t, "d")
	env, _ := k.Seal("d", []byte("telemetry"), []byte("topic"))

	// Flip each region: header (sender/seq), nonce, ciphertext.
	for _, idx := range []int{1, len(env) - 25, len(env) - 1} {
		bad := append([]byte(nil), env...)
		bad[idx] ^= 0xFF
		if _, _, _, err := k.Open(bad, []byte("topic")); err == nil {
			t.Errorf("tampered byte %d accepted", idx)
		}
	}
	// Wrong AAD (message moved to another topic) must fail.
	if _, _, _, err := k.Open(env, []byte("other-topic")); !errors.Is(err, ErrTampered) {
		t.Errorf("AAD mismatch: %v", err)
	}
}

func TestUnknownSenderAndMalformed(t *testing.T) {
	k := ring(t, "known")
	other := ring(t, "ghost")
	env, _ := other.Seal("ghost", []byte("x"), nil)
	if _, _, _, err := k.Open(env, nil); !errors.Is(err, ErrUnknownSender) {
		t.Errorf("unknown sender: %v", err)
	}
	if _, err := k.Seal("ghost", []byte("x"), nil); !errors.Is(err, ErrUnknownSender) {
		t.Errorf("seal unknown: %v", err)
	}
	for _, junk := range [][]byte{nil, {}, {5, 'a'}, bytes.Repeat([]byte{9}, 8)} {
		if _, _, _, err := k.Open(junk, nil); err == nil {
			t.Errorf("malformed envelope %v accepted", junk)
		}
	}
}

func TestRevokeKey(t *testing.T) {
	k := ring(t, "d")
	env, _ := k.Seal("d", []byte("x"), nil)
	k.Revoke("d")
	if _, _, _, err := k.Open(env, nil); !errors.Is(err, ErrUnknownSender) {
		t.Errorf("open after revoke: %v", err)
	}
}

func TestImportKey(t *testing.T) {
	k1 := NewKeyRing()
	key, err := k1.Generate("d")
	if err != nil {
		t.Fatal(err)
	}
	k2 := NewKeyRing()
	if err := k2.Import("d", key); err != nil {
		t.Fatal(err)
	}
	env, _ := k1.Seal("d", []byte("shared"), nil)
	_, _, pt, err := k2.Open(env, nil)
	if err != nil || string(pt) != "shared" {
		t.Errorf("cross-ring open: %v %q", err, pt)
	}
	if err := k2.Import("bad", []byte("short")); err == nil {
		t.Error("short key accepted")
	}
	if err := k2.Import("", key); err == nil {
		t.Error("empty id accepted")
	}
}

func TestDistinctCiphertexts(t *testing.T) {
	k := ring(t, "d")
	e1, _ := k.Seal("d", []byte("same"), nil)
	e2, _ := k.Seal("d", []byte("same"), nil)
	if bytes.Equal(e1, e2) {
		t.Error("identical plaintexts produced identical envelopes (nonce reuse?)")
	}
}

func TestReplayGuardBasic(t *testing.T) {
	g := NewReplayGuard()
	if err := g.Check("d", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Check("d", 1); !errors.Is(err, ErrReplay) {
		t.Errorf("duplicate: %v", err)
	}
	if err := g.Check("d", 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Check("d", 0); !errors.Is(err, ErrReplay) {
		t.Errorf("zero seq: %v", err)
	}
	// Different sender has an independent window.
	if err := g.Check("e", 1); err != nil {
		t.Errorf("other sender: %v", err)
	}
}

func TestReplayGuardOutOfOrderWindow(t *testing.T) {
	g := NewReplayGuard()
	// Accept 10, then late-but-fresh 5, then reject replayed 5.
	if err := g.Check("d", 10); err != nil {
		t.Fatal(err)
	}
	if err := g.Check("d", 5); err != nil {
		t.Fatalf("in-window late packet rejected: %v", err)
	}
	if err := g.Check("d", 5); !errors.Is(err, ErrReplay) {
		t.Errorf("replayed late packet: %v", err)
	}
}

func TestReplayGuardOldBeyondWindow(t *testing.T) {
	g := NewReplayGuard()
	if err := g.Check("d", 5000); err != nil {
		t.Fatal(err)
	}
	if err := g.Check("d", 5000-replayWin); !errors.Is(err, ErrReplay) {
		t.Errorf("ancient packet: %v", err)
	}
	// Just inside the window is fine.
	if err := g.Check("d", 5000-replayWin+1); err != nil {
		t.Errorf("edge-of-window packet rejected: %v", err)
	}
}

func TestReplayGuardBigJump(t *testing.T) {
	g := NewReplayGuard()
	g.Check("d", 1)
	if err := g.Check("d", 1_000_000); err != nil {
		t.Fatal(err)
	}
	// After the jump, 1 is out of window.
	if err := g.Check("d", 1); !errors.Is(err, ErrReplay) {
		t.Errorf("pre-jump seq: %v", err)
	}
}

// Property: any strictly increasing sequence is always accepted; a repeat
// of any previously seen in-window value is always rejected.
func TestReplayGuardProperty(t *testing.T) {
	f := func(deltas []uint8) bool {
		g := NewReplayGuard()
		seq := uint64(0)
		seen := []uint64{}
		for _, d := range deltas {
			seq += uint64(d%16) + 1
			if err := g.Check("d", seq); err != nil {
				return false
			}
			seen = append(seen, seq)
		}
		// Replay everything still inside the window: must all fail.
		for _, s := range seen {
			if seq-s < replayWin {
				if err := g.Check("d", s); err == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSignVerify(t *testing.T) {
	k := ring(t, "d")
	msg := []byte("fog-readable payload")
	tag, err := k.Sign("d", msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Verify("d", msg, tag); err != nil {
		t.Fatal(err)
	}
	if err := k.Verify("d", []byte("altered"), tag); !errors.Is(err, ErrTampered) {
		t.Errorf("altered message: %v", err)
	}
	if _, err := k.Sign("nobody", msg); !errors.Is(err, ErrUnknownSender) {
		t.Errorf("sign unknown: %v", err)
	}
}

// Property: Seal/Open round-trips arbitrary payloads and AADs.
func TestSealOpenProperty(t *testing.T) {
	k := ring(t, "p")
	f := func(pt, aad []byte) bool {
		env, err := k.Seal("p", pt, aad)
		if err != nil {
			return false
		}
		_, _, got, err := k.Open(env, aad)
		if err != nil {
			return false
		}
		if len(pt) == 0 {
			return len(got) == 0
		}
		return bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
