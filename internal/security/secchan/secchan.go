// Package secchan provides the payload confidentiality and integrity layer
// the paper requires ("the confidentiality of the data must be provided
// using state of the practice cryptography"): AES-256-GCM envelope
// encryption of telemetry payloads with per-device keys, sequence numbers
// bound into the AEAD, and a sliding-window replay guard that defeats the
// §III replay/eavesdrop-and-reinject attacks.
//
// The envelope travels inside MQTT payloads, so confidentiality holds even
// against an eavesdropper with full broker-link visibility (the commodity-
// market leakage scenario of §III).
package secchan

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the sealing layer.
var (
	ErrUnknownSender = errors.New("secchan: unknown sender")
	ErrTampered      = errors.New("secchan: authentication failed")
	ErrReplay        = errors.New("secchan: replayed sequence number")
	ErrMalformed     = errors.New("secchan: malformed envelope")
)

const (
	keyLen      = 32
	nonceLen    = 12
	seqLen      = 8
	maxSenderID = 255
	replayWin   = 1024
)

// KeyRing holds per-device symmetric keys and per-sender send sequence
// counters. Safe for concurrent use.
type KeyRing struct {
	mu   sync.Mutex
	keys map[string][]byte
	seqs map[string]uint64
}

// NewKeyRing returns an empty key ring.
func NewKeyRing() *KeyRing {
	return &KeyRing{keys: make(map[string][]byte), seqs: make(map[string]uint64)}
}

// Generate creates and stores a fresh random key for id, returning it so it
// can be provisioned onto the device.
func (k *KeyRing) Generate(id string) ([]byte, error) {
	if id == "" || len(id) > maxSenderID {
		return nil, fmt.Errorf("secchan: bad sender id %q", id)
	}
	key := make([]byte, keyLen)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("secchan: key entropy: %w", err)
	}
	k.mu.Lock()
	k.keys[id] = key
	k.mu.Unlock()
	return append([]byte(nil), key...), nil
}

// Import installs an externally provisioned key.
func (k *KeyRing) Import(id string, key []byte) error {
	if id == "" || len(id) > maxSenderID {
		return fmt.Errorf("secchan: bad sender id %q", id)
	}
	if len(key) != keyLen {
		return fmt.Errorf("secchan: key for %q must be %d bytes, got %d", id, keyLen, len(key))
	}
	k.mu.Lock()
	k.keys[id] = append([]byte(nil), key...)
	k.mu.Unlock()
	return nil
}

// Revoke deletes id's key; subsequent Seal/Open for id fail.
func (k *KeyRing) Revoke(id string) {
	k.mu.Lock()
	delete(k.keys, id)
	delete(k.seqs, id)
	k.mu.Unlock()
}

func (k *KeyRing) key(id string) ([]byte, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	key, ok := k.keys[id]
	return key, ok
}

func (k *KeyRing) nextSeq(id string) uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.seqs[id]++
	return k.seqs[id]
}

// Seal encrypts plaintext from sender. aad is additional authenticated
// data (e.g. the MQTT topic) bound into the tag without being encrypted.
//
// Envelope wire format:
//
//	[1] sender id length n
//	[n] sender id
//	[8] sequence number (big endian)
//	[12] nonce
//	[..] AES-256-GCM ciphertext+tag
func (k *KeyRing) Seal(sender string, plaintext, aad []byte) ([]byte, error) {
	key, ok := k.key(sender)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSender, sender)
	}
	seq := k.nextSeq(sender)

	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("secchan: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("secchan: %w", err)
	}
	nonce := make([]byte, nonceLen)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("secchan: nonce entropy: %w", err)
	}

	header := buildHeader(sender, seq)
	fullAAD := append(append([]byte(nil), header...), aad...)
	ct := gcm.Seal(nil, nonce, plaintext, fullAAD)

	out := make([]byte, 0, len(header)+nonceLen+len(ct))
	out = append(out, header...)
	out = append(out, nonce...)
	out = append(out, ct...)
	return out, nil
}

func buildHeader(sender string, seq uint64) []byte {
	h := make([]byte, 0, 1+len(sender)+seqLen)
	h = append(h, byte(len(sender)))
	h = append(h, sender...)
	var s [seqLen]byte
	binary.BigEndian.PutUint64(s[:], seq)
	return append(h, s[:]...)
}

// Open authenticates and decrypts an envelope, returning the sender,
// sequence number and plaintext. It does NOT check replay — combine with a
// ReplayGuard at the receiving edge.
func (k *KeyRing) Open(envelope, aad []byte) (sender string, seq uint64, plaintext []byte, err error) {
	if len(envelope) < 1 {
		return "", 0, nil, ErrMalformed
	}
	n := int(envelope[0])
	hdrLen := 1 + n + seqLen
	if len(envelope) < hdrLen+nonceLen {
		return "", 0, nil, ErrMalformed
	}
	sender = string(envelope[1 : 1+n])
	seq = binary.BigEndian.Uint64(envelope[1+n : hdrLen])
	nonce := envelope[hdrLen : hdrLen+nonceLen]
	ct := envelope[hdrLen+nonceLen:]

	key, ok := k.key(sender)
	if !ok {
		return "", 0, nil, fmt.Errorf("%w: %s", ErrUnknownSender, sender)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return "", 0, nil, fmt.Errorf("secchan: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return "", 0, nil, fmt.Errorf("secchan: %w", err)
	}
	header := envelope[:hdrLen]
	fullAAD := append(append([]byte(nil), header...), aad...)
	pt, err := gcm.Open(nil, nonce, ct, fullAAD)
	if err != nil {
		return "", 0, nil, fmt.Errorf("%w (sender %s seq %d)", ErrTampered, sender, seq)
	}
	return sender, seq, pt, nil
}

// ReplayGuard tracks, per sender, the highest accepted sequence number and
// a sliding bitmap window behind it, rejecting duplicates and stale
// replays. Safe for concurrent use.
type ReplayGuard struct {
	mu      sync.Mutex
	senders map[string]*replayState
}

type replayState struct {
	highest uint64
	// window bit i set = (highest - i) already seen, i in [0, replayWin)
	window [replayWin / 64]uint64
}

// NewReplayGuard returns an empty guard.
func NewReplayGuard() *ReplayGuard {
	return &ReplayGuard{senders: make(map[string]*replayState)}
}

// Check admits seq for sender exactly once. It returns ErrReplay for
// duplicates and for sequence numbers older than the window.
func (g *ReplayGuard) Check(sender string, seq uint64) error {
	if seq == 0 {
		return fmt.Errorf("%w: zero sequence", ErrReplay)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.senders[sender]
	if st == nil {
		st = &replayState{}
		g.senders[sender] = st
	}
	switch {
	case seq > st.highest:
		shift := seq - st.highest
		st.slide(shift)
		st.highest = seq
		st.setBit(0)
		return nil
	case st.highest-seq >= replayWin:
		return fmt.Errorf("%w: seq %d too old (highest %d)", ErrReplay, seq, st.highest)
	default:
		off := st.highest - seq
		if st.bit(off) {
			return fmt.Errorf("%w: seq %d (sender %s)", ErrReplay, seq, sender)
		}
		st.setBit(off)
		return nil
	}
}

func (s *replayState) slide(n uint64) {
	if n >= replayWin {
		for i := range s.window {
			s.window[i] = 0
		}
		return
	}
	// Shift the conceptual bitmap toward older offsets by n.
	words := int(n / 64)
	bits := uint(n % 64)
	if words > 0 {
		copy(s.window[words:], s.window[:len(s.window)-words])
		for i := 0; i < words; i++ {
			s.window[i] = 0
		}
	}
	if bits > 0 {
		carry := uint64(0)
		for i := 0; i < len(s.window); i++ {
			next := s.window[i] >> (64 - bits)
			s.window[i] = s.window[i]<<bits | carry
			carry = next
		}
	}
}

func (s *replayState) bit(off uint64) bool {
	return s.window[off/64]&(1<<(off%64)) != 0
}

func (s *replayState) setBit(off uint64) {
	s.window[off/64] |= 1 << (off % 64)
}

// Sign computes an HMAC-SHA256 tag over msg with the sender's key —
// integrity-only mode for payloads that must stay readable by intermediate
// fog processing.
func (k *KeyRing) Sign(sender string, msg []byte) ([]byte, error) {
	key, ok := k.key(sender)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSender, sender)
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(msg)
	return mac.Sum(nil), nil
}

// Verify checks an HMAC-SHA256 tag produced by Sign.
func (k *KeyRing) Verify(sender string, msg, tag []byte) error {
	want, err := k.Sign(sender, msg)
	if err != nil {
		return err
	}
	if !hmac.Equal(want, tag) {
		return fmt.Errorf("%w (sender %s)", ErrTampered, sender)
	}
	return nil
}
