package pep

import (
	"errors"
	"fmt"
	"testing"

	"github.com/swamp-project/swamp/internal/security/identity"
	"github.com/swamp-project/swamp/internal/security/oauth"
	"github.com/swamp-project/swamp/internal/tenant"
)

func farmer(owner string) identity.Principal {
	return identity.Principal{ID: owner + "-farmer", Roles: []identity.Role{identity.RoleFarmer}, Owner: tenant.ID(owner)}
}

func TestPDPDefaultDeny(t *testing.T) {
	pdp := NewPDP()
	dec := pdp.Decide(Request{Principal: farmer("f1"), Action: "read", Resource: "x"})
	if dec.Effect != Deny || dec.PolicyID != "" {
		t.Errorf("decision = %+v", dec)
	}
}

func TestPDPPermitByRoleActionResource(t *testing.T) {
	pdp := NewPDP(Policy{
		ID:              "farmers-read-own",
		Roles:           []identity.Role{identity.RoleFarmer},
		Actions:         []string{"read"},
		ResourcePattern: "ngsi:farm1:*",
		Effect:          Permit,
	})
	ok := pdp.Decide(Request{Principal: farmer("farm1"), Action: "read", Resource: "ngsi:farm1:plot3"})
	if ok.Effect != Permit || ok.PolicyID != "farmers-read-own" {
		t.Errorf("permit case = %+v", ok)
	}
	for i, req := range []Request{
		{Principal: farmer("farm1"), Action: "write", Resource: "ngsi:farm1:plot3"},
		{Principal: farmer("farm1"), Action: "read", Resource: "ngsi:farm2:plot3"},
		{Principal: identity.Principal{ID: "dev", Roles: []identity.Role{identity.RoleDevice}}, Action: "read", Resource: "ngsi:farm1:plot3"},
	} {
		if dec := pdp.Decide(req); dec.Effect != Deny {
			t.Errorf("case %d: expected deny, got %+v", i, dec)
		}
	}
}

func TestPDPDenyOverrides(t *testing.T) {
	pdp := NewPDP(
		Policy{ID: "allow-all-reads", Actions: []string{"read"}, Effect: Permit},
		Policy{ID: "block-quarantined", ResourcePattern: "ngsi:quarantine:*", Effect: Deny},
	)
	dec := pdp.Decide(Request{Principal: farmer("f"), Action: "read", Resource: "ngsi:quarantine:device7"})
	if dec.Effect != Deny || dec.PolicyID != "block-quarantined" {
		t.Errorf("deny-overrides failed: %+v", dec)
	}
	if dec := pdp.Decide(Request{Principal: farmer("f"), Action: "read", Resource: "ngsi:ok:1"}); dec.Effect != Permit {
		t.Errorf("unrelated resource denied: %+v", dec)
	}
}

func TestPDPOwnerSelector(t *testing.T) {
	pdp := NewPDP(Policy{ID: "farm1-only", Owners: []tenant.ID{"farm1"}, Effect: Permit})
	if dec := pdp.Decide(Request{Principal: farmer("farm1"), Action: "read", Resource: "r"}); dec.Effect != Permit {
		t.Error("owner match denied")
	}
	if dec := pdp.Decide(Request{Principal: farmer("farm2"), Action: "read", Resource: "r"}); dec.Effect != Deny {
		t.Error("foreign owner permitted")
	}
}

func TestPDPABACCondition(t *testing.T) {
	pdp := NewPDP(Policy{
		ID:      "commands-in-maintenance-window",
		Actions: []string{"command"},
		Condition: func(r Request) bool {
			return r.Attrs["window"] == "open"
		},
		Effect: Permit,
	})
	base := Request{Principal: farmer("f"), Action: "command", Resource: "valve1"}
	closed := base
	closed.Attrs = map[string]string{"window": "closed"}
	if dec := pdp.Decide(closed); dec.Effect != Deny {
		t.Error("condition false but permitted")
	}
	open := base
	open.Attrs = map[string]string{"window": "open"}
	if dec := pdp.Decide(open); dec.Effect != Permit {
		t.Error("condition true but denied")
	}
}

func TestPDPAddRemovePolicy(t *testing.T) {
	pdp := NewPDP()
	pdp.AddPolicy(Policy{ID: "p1", Effect: Permit})
	if dec := pdp.Decide(Request{Principal: farmer("f"), Action: "a", Resource: "r"}); dec.Effect != Permit {
		t.Error("added policy ignored")
	}
	if !pdp.RemovePolicy("p1") {
		t.Error("remove returned false")
	}
	if pdp.RemovePolicy("p1") {
		t.Error("double remove returned true")
	}
	if dec := pdp.Decide(Request{Principal: farmer("f"), Action: "a", Resource: "r"}); dec.Effect != Deny {
		t.Error("removed policy still effective")
	}
}

func newStack(t *testing.T) (*oauth.Server, *PEP) {
	t.Helper()
	idm := identity.NewStore()
	if err := idm.Register(farmer("farm1"), "pw"); err != nil {
		t.Fatal(err)
	}
	if err := idm.Register(identity.Principal{ID: "intruder", Owner: "elsewhere"}, "pw"); err != nil {
		t.Fatal(err)
	}
	tokens := oauth.NewServer(idm, oauth.Config{})
	pdp := NewPDP(Policy{
		ID:              "farmers-own-data",
		Roles:           []identity.Role{identity.RoleFarmer},
		ResourcePattern: "ngsi:farm1:*",
		Effect:          Permit,
	})
	return tokens, NewPEP(tokens, pdp, nil)
}

func TestPEPAuthorizeFlow(t *testing.T) {
	tokens, pep := newStack(t)
	tok, err := tokens.GrantPassword("farm1-farmer", "pw")
	if err != nil {
		t.Fatal(err)
	}
	p, err := pep.Authorize(tok.Value, "read", "ngsi:farm1:plot1")
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != "farm1-farmer" {
		t.Errorf("principal = %+v", p)
	}
	// Cross-tenant access denied.
	if _, err := pep.Authorize(tok.Value, "read", "ngsi:farm2:plot1"); !errors.Is(err, ErrDenied) {
		t.Errorf("cross-tenant: %v", err)
	}
	// Principal without the farmer role denied.
	itok, _ := tokens.GrantPassword("intruder", "pw")
	if _, err := pep.Authorize(itok.Value, "read", "ngsi:farm1:plot1"); !errors.Is(err, ErrDenied) {
		t.Errorf("intruder: %v", err)
	}
	// Garbage token rejected before the PDP.
	if _, err := pep.Authorize("bogus", "read", "ngsi:farm1:plot1"); err == nil {
		t.Error("garbage token authorized")
	}
}

func TestPEPRevokedTokenRejected(t *testing.T) {
	tokens, pep := newStack(t)
	tok, _ := tokens.GrantPassword("farm1-farmer", "pw")
	tokens.Revoke(tok.Value)
	if _, err := pep.Authorize(tok.Value, "read", "ngsi:farm1:plot1"); err == nil {
		t.Error("revoked token authorized")
	}
}

func TestPEPAuditTrail(t *testing.T) {
	tokens, pep := newStack(t)
	tok, _ := tokens.GrantPassword("farm1-farmer", "pw")
	pep.Authorize(tok.Value, "read", "ngsi:farm1:a")
	pep.Authorize(tok.Value, "read", "ngsi:farm2:b") // denied
	pep.Authorize("junk", "read", "ngsi:farm1:c")    // token error

	audit := pep.Audit()
	if len(audit) != 3 {
		t.Fatalf("audit entries = %d, want 3", len(audit))
	}
	if audit[0].Effect != Permit || audit[0].Principal != "farm1-farmer" {
		t.Errorf("entry 0 = %+v", audit[0])
	}
	if audit[1].Effect != Deny {
		t.Errorf("entry 1 = %+v", audit[1])
	}
	if audit[2].Err == "" {
		t.Errorf("entry 2 should carry a token error: %+v", audit[2])
	}
	if pep.Metrics().Counter("pep.denied").Value() != 1 {
		t.Error("denied counter wrong")
	}
}

func TestPEPAuditRingWraps(t *testing.T) {
	tokens, base := newStack(t)
	pep := NewPEP(tokens, base.pdp, nil, WithAuditCap(8))
	tok, _ := tokens.GrantPassword("farm1-farmer", "pw")
	for i := 0; i < 20; i++ {
		pep.Authorize(tok.Value, "read", fmt.Sprintf("ngsi:farm1:%d", i))
	}
	audit := pep.Audit()
	if len(audit) != 8 {
		t.Fatalf("ring size = %d, want 8", len(audit))
	}
	if audit[0].Resource != "ngsi:farm1:12" || audit[7].Resource != "ngsi:farm1:19" {
		t.Errorf("ring order wrong: first %q last %q", audit[0].Resource, audit[7].Resource)
	}
}

func TestEffectString(t *testing.T) {
	if Permit.String() != "permit" || Deny.String() != "deny" {
		t.Error("effect strings wrong")
	}
}
