// Package pep implements the SWAMP policy enforcement point and policy
// decision point — the stand-ins for the FIWARE Wilma (PEP proxy) and
// AuthZForce (PDP) generic enablers. Every northbound read and southbound
// command crosses the PEP: bearer token introspection, then an RBAC/ABAC
// policy decision with deny-overrides combining, then an audit record.
//
// This is the mechanism behind the paper's §III requirement that "each
// owner controls their data and decides the access control to the data and
// the services".
//
// Because the PEP fronts every authenticated request, its hot path is
// built to stay off locks: policy decisions are memoized per
// (principal, action, resource) and validated against the PDP's version
// counter (any AddPolicy/RemovePolicy bump invalidates every cached
// decision at once — see the invariant on Authorize), and the audit
// trail is a fixed-size lock-free ring of atomic slots instead of a
// mutex-guarded slice. Memoization switches itself off while any policy
// carries a Condition closure, whose result a cache key cannot capture.
package pep

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/security/identity"
	"github.com/swamp-project/swamp/internal/tenant"
	"github.com/swamp-project/swamp/internal/security/oauth"
)

// Effect is a policy outcome.
type Effect int

// Effects. The zero value is Deny so an incompletely built policy fails
// closed.
const (
	Deny Effect = iota
	Permit
)

// String implements fmt.Stringer.
func (e Effect) String() string {
	if e == Permit {
		return "permit"
	}
	return "deny"
}

// Request is one authorization question: may Principal perform Action on
// Resource?
type Request struct {
	Principal identity.Principal
	Action    string            // "read", "write", "subscribe", "command", ...
	Resource  string            // e.g. "ngsi:urn:swamp:farm1:plot:3"
	Attrs     map[string]string // extra ABAC context
}

// Policy is one rule. A policy matches a request when every non-empty
// selector matches; Condition, if set, must also return true.
type Policy struct {
	ID          string
	Description string
	// Roles: the principal must hold at least one; empty matches any role.
	Roles []identity.Role
	// Owners: the principal's tenant must be listed; empty matches any.
	Owners []tenant.ID
	// Actions: the request action must be listed; empty matches any.
	Actions []string
	// ResourcePattern: exact resource or prefix ending in '*'; empty
	// matches any resource.
	ResourcePattern string
	// Condition is an optional ABAC predicate evaluated last. Policies
	// with a Condition disable PEP decision memoization while installed.
	Condition func(Request) bool
	Effect    Effect
}

func (p Policy) matches(req Request) bool {
	if len(p.Roles) > 0 {
		ok := false
		for _, r := range p.Roles {
			if req.Principal.HasRole(r) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(p.Owners) > 0 {
		ok := false
		for _, o := range p.Owners {
			if req.Principal.Owner == o {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(p.Actions) > 0 {
		ok := false
		for _, a := range p.Actions {
			if a == req.Action {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if p.ResourcePattern != "" && !matchResource(p.ResourcePattern, req.Resource) {
		return false
	}
	if p.Condition != nil && !p.Condition(req) {
		return false
	}
	return true
}

func matchResource(pattern, resource string) bool {
	if pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(resource, strings.TrimSuffix(pattern, "*"))
	}
	return pattern == resource
}

// Decision is the PDP's answer.
type Decision struct {
	Effect   Effect
	PolicyID string // the deciding policy; empty for the default deny
}

// PDP evaluates policies with deny-overrides combining: any matching deny
// policy denies; otherwise any matching permit permits; otherwise the
// default (deny) applies.
type PDP struct {
	mu       sync.RWMutex
	policies []Policy
	// version counts policy-set mutations. Caches key their entries to
	// the version observed *before* deciding, so by the time AddPolicy or
	// RemovePolicy returns, every previously cached decision has become
	// unreachable.
	version atomic.Uint64
	// conditional counts installed policies with a Condition closure;
	// while nonzero, decisions are not cacheable.
	conditional atomic.Int64
}

// NewPDP builds a PDP over the given policies.
func NewPDP(policies ...Policy) *PDP {
	p := &PDP{}
	for _, pol := range policies {
		p.policies = append(p.policies, pol)
		if pol.Condition != nil {
			p.conditional.Add(1)
		}
	}
	return p
}

// AddPolicy appends a policy at runtime (a farmer granting an agronomist
// access).
func (p *PDP) AddPolicy(pol Policy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.policies = append(p.policies, pol)
	if pol.Condition != nil {
		p.conditional.Add(1)
	}
	p.version.Add(1)
}

// RemovePolicy deletes the policy with the given id; it reports whether a
// policy was removed.
func (p *PDP) RemovePolicy(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, pol := range p.policies {
		if pol.ID == id {
			if pol.Condition != nil {
				p.conditional.Add(-1)
			}
			p.policies = append(p.policies[:i], p.policies[i+1:]...)
			p.version.Add(1)
			return true
		}
	}
	return false
}

// Version returns the mutation counter. A cached decision is valid only
// while the version it was computed under is still current.
func (p *PDP) Version() uint64 { return p.version.Load() }

// Cacheable reports whether decisions are pure functions of
// (principal, action, resource) right now — false while any installed
// policy carries a Condition closure.
func (p *PDP) Cacheable() bool { return p.conditional.Load() == 0 }

// Decide answers one request.
func (p *PDP) Decide(req Request) Decision {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var permit *Policy
	for i := range p.policies {
		pol := &p.policies[i]
		if !pol.matches(req) {
			continue
		}
		if pol.Effect == Deny {
			return Decision{Effect: Deny, PolicyID: pol.ID}
		}
		if permit == nil {
			permit = pol
		}
	}
	if permit != nil {
		return Decision{Effect: Permit, PolicyID: permit.ID}
	}
	return Decision{Effect: Deny}
}

// AuditEntry records one enforcement outcome.
type AuditEntry struct {
	At        time.Time
	Principal string
	Action    string
	Resource  string
	Effect    Effect
	PolicyID  string
	Err       string // token failure reason, if enforcement failed pre-PDP
}

// ErrDenied is wrapped by Authorize when the PDP denies.
var ErrDenied = errors.New("pep: denied")

// DefaultAuditCap is the audit-ring capacity when no option overrides it.
const DefaultAuditCap = 4096

// auditRing is a fixed-size lock-free ring: writers claim a slot with one
// atomic increment and publish the entry with one atomic pointer store.
// Once the ring has wrapped, every write overwrites the oldest slot (the
// drop is counted). Audit snapshots are taken slot-by-slot: each entry
// read is internally consistent, though a snapshot racing heavy writes
// may miss a concurrent entry — the audit trail is an operator-facing
// window, not a transaction log.
type auditRing struct {
	slots   []atomic.Pointer[AuditEntry]
	mask    uint64
	head    atomic.Uint64 // next sequence number to claim
	dropped *metrics.Counter
}

func newAuditRing(capacity int, dropped *metrics.Counter) *auditRing {
	if capacity <= 0 {
		capacity = DefaultAuditCap
	}
	// Round up to a power of two so slot = seq & mask.
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &auditRing{slots: make([]atomic.Pointer[AuditEntry], c), mask: uint64(c - 1), dropped: dropped}
}

func (r *auditRing) add(e AuditEntry) {
	seq := r.head.Add(1) - 1
	if seq > r.mask {
		r.dropped.Inc()
	}
	r.slots[seq&r.mask].Store(&e)
}

// snapshot returns the retained entries, oldest first.
func (r *auditRing) snapshot() []AuditEntry {
	head := r.head.Load()
	n := uint64(len(r.slots))
	start := uint64(0)
	if head > n {
		start = head - n
	}
	out := make([]AuditEntry, 0, head-start)
	for seq := start; seq < head; seq++ {
		if e := r.slots[seq&r.mask].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// memoEntry is one cached decision, valid while version is current.
type memoEntry struct {
	version uint64
	dec     Decision
}

// memoTable is one cache generation. When a generation grows past
// memoCap distinct keys the whole table is swapped for a fresh one —
// cheaper and simpler than eviction, and a full re-decide of the working
// set costs one PDP pass per key.
type memoTable struct {
	m     sync.Map // string key -> memoEntry
	count atomic.Int64
}

const memoCap = 1 << 14

// Option configures a PEP.
type Option func(*PEP)

// WithAuditCap bounds the audit ring (entries; rounded up to a power of
// two). Zero or negative means DefaultAuditCap.
func WithAuditCap(n int) Option { return func(p *PEP) { p.auditCap = n } }

// PEP couples token introspection with policy decisions and keeps a
// bounded audit ring.
type PEP struct {
	tokens *oauth.Server
	pdp    *PDP
	reg    *metrics.Registry

	auditCap int
	ring     *auditRing
	memo     atomic.Pointer[memoTable]

	cPermitted *metrics.Counter
	cDenied    *metrics.Counter
	cRejected  *metrics.Counter
	cMemoHit   *metrics.Counter
}

// NewPEP builds an enforcement point. metricsReg may be nil.
func NewPEP(tokens *oauth.Server, pdp *PDP, metricsReg *metrics.Registry, opts ...Option) *PEP {
	if metricsReg == nil {
		metricsReg = metrics.NewRegistry()
	}
	p := &PEP{tokens: tokens, pdp: pdp, reg: metricsReg, auditCap: DefaultAuditCap}
	for _, o := range opts {
		o(p)
	}
	p.ring = newAuditRing(p.auditCap, metricsReg.Counter("security.audit.dropped"))
	p.memo.Store(&memoTable{})
	p.cPermitted = metricsReg.Counter("pep.permitted")
	p.cDenied = metricsReg.Counter("pep.denied")
	p.cRejected = metricsReg.Counter("pep.token.rejected")
	p.cMemoHit = metricsReg.Counter("pep.memo.hits")
	return p
}

// memoKey identifies a decision. It covers everything Decide can read
// from a condition-free request: the principal's identity, tenant and
// role set (two tokens for the same ID issued across a role change must
// not share an entry), plus action and resource.
func memoKey(pr *identity.Principal, action, resource string) string {
	n := len(pr.ID) + len(pr.Owner) + len(action) + len(resource) + 4
	for _, r := range pr.Roles {
		n += len(r) + 1
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteString(pr.ID)
	b.WriteByte(0)
	b.WriteString(string(pr.Owner))
	for _, r := range pr.Roles {
		b.WriteByte(0)
		b.WriteString(string(r))
	}
	b.WriteByte(1)
	b.WriteString(action)
	b.WriteByte(0)
	b.WriteString(resource)
	return b.String()
}

// decide answers via the memo when possible.
//
// Invariant (no stale permit): the PDP version is read BEFORE Decide and
// stored with the entry. AddPolicy/RemovePolicy bump the version after
// mutating, so an entry cached under the old version — even one computed
// concurrently with the mutation — fails the version check on every
// lookup after the mutation returns. Revocation needs no invalidation
// here: Introspect rejects the token before the memo is consulted.
func (p *PEP) decide(req Request) Decision {
	if !p.pdp.Cacheable() {
		return p.pdp.Decide(req)
	}
	ver := p.pdp.Version()
	key := memoKey(&req.Principal, req.Action, req.Resource)
	tbl := p.memo.Load()
	if v, ok := tbl.m.Load(key); ok {
		if e := v.(memoEntry); e.version == ver {
			p.cMemoHit.Inc()
			return e.dec
		}
	}
	dec := p.pdp.Decide(req)
	if _, loaded := tbl.m.LoadOrStore(key, memoEntry{version: ver, dec: dec}); loaded {
		tbl.m.Store(key, memoEntry{version: ver, dec: dec})
	} else if tbl.count.Add(1) > memoCap {
		p.memo.CompareAndSwap(tbl, &memoTable{})
	}
	return dec
}

// Authorize enforces one access: it introspects the bearer token, asks the
// PDP (through the decision memo), audits, and returns the principal on
// permit.
func (p *PEP) Authorize(tokenValue, action, resource string) (identity.Principal, error) {
	tok, err := p.tokens.Introspect(tokenValue)
	if err != nil {
		p.ring.add(AuditEntry{At: time.Now(), Action: action, Resource: resource, Effect: Deny, Err: err.Error()})
		p.cRejected.Inc()
		return identity.Principal{}, fmt.Errorf("pep: token: %w", err)
	}
	req := Request{Principal: tok.Principal, Action: action, Resource: resource}
	dec := p.decide(req)
	p.ring.add(AuditEntry{
		At: time.Now(), Principal: tok.Principal.ID, Action: action,
		Resource: resource, Effect: dec.Effect, PolicyID: dec.PolicyID,
	})
	if dec.Effect != Permit {
		p.cDenied.Inc()
		return identity.Principal{}, fmt.Errorf("%w: %s on %s for %s (policy %q)",
			ErrDenied, action, resource, tok.Principal.ID, dec.PolicyID)
	}
	p.cPermitted.Inc()
	return tok.Principal, nil
}

// Audit returns a copy of the retained audit entries, oldest first.
func (p *PEP) Audit() []AuditEntry { return p.ring.snapshot() }

// Metrics returns the PEP's metric registry.
func (p *PEP) Metrics() *metrics.Registry { return p.reg }
