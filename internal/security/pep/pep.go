// Package pep implements the SWAMP policy enforcement point and policy
// decision point — the stand-ins for the FIWARE Wilma (PEP proxy) and
// AuthZForce (PDP) generic enablers. Every northbound read and southbound
// command crosses the PEP: bearer token introspection, then an RBAC/ABAC
// policy decision with deny-overrides combining, then an audit record.
//
// This is the mechanism behind the paper's §III requirement that "each
// owner controls their data and decides the access control to the data and
// the services".
package pep

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/security/identity"
	"github.com/swamp-project/swamp/internal/security/oauth"
)

// Effect is a policy outcome.
type Effect int

// Effects. The zero value is Deny so an incompletely built policy fails
// closed.
const (
	Deny Effect = iota
	Permit
)

// String implements fmt.Stringer.
func (e Effect) String() string {
	if e == Permit {
		return "permit"
	}
	return "deny"
}

// Request is one authorization question: may Principal perform Action on
// Resource?
type Request struct {
	Principal identity.Principal
	Action    string            // "read", "write", "subscribe", "command", ...
	Resource  string            // e.g. "ngsi:urn:swamp:farm1:plot:3"
	Attrs     map[string]string // extra ABAC context
}

// Policy is one rule. A policy matches a request when every non-empty
// selector matches; Condition, if set, must also return true.
type Policy struct {
	ID          string
	Description string
	// Roles: the principal must hold at least one; empty matches any role.
	Roles []identity.Role
	// Owners: the principal's tenant must be listed; empty matches any.
	Owners []string
	// Actions: the request action must be listed; empty matches any.
	Actions []string
	// ResourcePattern: exact resource or prefix ending in '*'; empty
	// matches any resource.
	ResourcePattern string
	// Condition is an optional ABAC predicate evaluated last.
	Condition func(Request) bool
	Effect    Effect
}

func (p Policy) matches(req Request) bool {
	if len(p.Roles) > 0 {
		ok := false
		for _, r := range p.Roles {
			if req.Principal.HasRole(r) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(p.Owners) > 0 {
		ok := false
		for _, o := range p.Owners {
			if req.Principal.Owner == o {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(p.Actions) > 0 {
		ok := false
		for _, a := range p.Actions {
			if a == req.Action {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if p.ResourcePattern != "" && !matchResource(p.ResourcePattern, req.Resource) {
		return false
	}
	if p.Condition != nil && !p.Condition(req) {
		return false
	}
	return true
}

func matchResource(pattern, resource string) bool {
	if pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(resource, strings.TrimSuffix(pattern, "*"))
	}
	return pattern == resource
}

// Decision is the PDP's answer.
type Decision struct {
	Effect   Effect
	PolicyID string // the deciding policy; empty for the default deny
}

// PDP evaluates policies with deny-overrides combining: any matching deny
// policy denies; otherwise any matching permit permits; otherwise the
// default (deny) applies.
type PDP struct {
	mu       sync.RWMutex
	policies []Policy
}

// NewPDP builds a PDP over the given policies.
func NewPDP(policies ...Policy) *PDP {
	p := &PDP{}
	p.policies = append(p.policies, policies...)
	return p
}

// AddPolicy appends a policy at runtime (a farmer granting an agronomist
// access).
func (p *PDP) AddPolicy(pol Policy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.policies = append(p.policies, pol)
}

// RemovePolicy deletes the policy with the given id; it reports whether a
// policy was removed.
func (p *PDP) RemovePolicy(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, pol := range p.policies {
		if pol.ID == id {
			p.policies = append(p.policies[:i], p.policies[i+1:]...)
			return true
		}
	}
	return false
}

// Decide answers one request.
func (p *PDP) Decide(req Request) Decision {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var permit *Policy
	for i := range p.policies {
		pol := &p.policies[i]
		if !pol.matches(req) {
			continue
		}
		if pol.Effect == Deny {
			return Decision{Effect: Deny, PolicyID: pol.ID}
		}
		if permit == nil {
			permit = pol
		}
	}
	if permit != nil {
		return Decision{Effect: Permit, PolicyID: permit.ID}
	}
	return Decision{Effect: Deny}
}

// AuditEntry records one enforcement outcome.
type AuditEntry struct {
	At        time.Time
	Principal string
	Action    string
	Resource  string
	Effect    Effect
	PolicyID  string
	Err       string // token failure reason, if enforcement failed pre-PDP
}

// ErrDenied is wrapped by Authorize when the PDP denies.
var ErrDenied = errors.New("pep: denied")

// PEP couples token introspection with policy decisions and keeps a bounded
// audit ring.
type PEP struct {
	tokens *oauth.Server
	pdp    *PDP
	reg    *metrics.Registry

	mu       sync.Mutex
	audit    []AuditEntry
	auditCap int
	auditPos int
	full     bool
}

// NewPEP builds an enforcement point. metricsReg may be nil.
func NewPEP(tokens *oauth.Server, pdp *PDP, metricsReg *metrics.Registry) *PEP {
	if metricsReg == nil {
		metricsReg = metrics.NewRegistry()
	}
	return &PEP{tokens: tokens, pdp: pdp, reg: metricsReg, auditCap: 4096,
		audit: make([]AuditEntry, 0, 4096)}
}

// Authorize enforces one access: it introspects the bearer token, asks the
// PDP, audits, and returns the principal on permit.
func (p *PEP) Authorize(tokenValue, action, resource string) (identity.Principal, error) {
	tok, err := p.tokens.Introspect(tokenValue)
	if err != nil {
		p.record(AuditEntry{At: time.Now(), Action: action, Resource: resource, Effect: Deny, Err: err.Error()})
		p.reg.Counter("pep.token.rejected").Inc()
		return identity.Principal{}, fmt.Errorf("pep: token: %w", err)
	}
	req := Request{Principal: tok.Principal, Action: action, Resource: resource}
	dec := p.pdp.Decide(req)
	p.record(AuditEntry{
		At: time.Now(), Principal: tok.Principal.ID, Action: action,
		Resource: resource, Effect: dec.Effect, PolicyID: dec.PolicyID,
	})
	if dec.Effect != Permit {
		p.reg.Counter("pep.denied").Inc()
		return identity.Principal{}, fmt.Errorf("%w: %s on %s for %s (policy %q)",
			ErrDenied, action, resource, tok.Principal.ID, dec.PolicyID)
	}
	p.reg.Counter("pep.permitted").Inc()
	return tok.Principal, nil
}

func (p *PEP) record(e AuditEntry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.audit) < p.auditCap {
		p.audit = append(p.audit, e)
		return
	}
	p.audit[p.auditPos] = e
	p.auditPos = (p.auditPos + 1) % p.auditCap
	p.full = true
}

// Audit returns a copy of the audit entries, oldest first.
func (p *PEP) Audit() []AuditEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.full {
		return append([]AuditEntry(nil), p.audit...)
	}
	out := make([]AuditEntry, 0, p.auditCap)
	out = append(out, p.audit[p.auditPos:]...)
	out = append(out, p.audit[:p.auditPos]...)
	return out
}

// Metrics returns the PEP's metric registry.
func (p *PEP) Metrics() *metrics.Registry { return p.reg }
