package pep

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/swamp-project/swamp/internal/security/identity"
)

// TestMemoNeverServesStalePermit is the -race invalidation proof: while
// workers hammer Authorize (filling the memo), the main goroutine
// flip-flops a deny policy and revokes tokens — and every Authorize
// issued after a mutation returns must observe it.
func TestMemoNeverServesStalePermit(t *testing.T) {
	tokens, pep := newStack(t)
	tok, err := tokens.GrantPassword("farm1-farmer", "pw")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// A rotating resource set keeps the memo populated with
				// entries the deny flip must invalidate.
				pep.Authorize(tok.Value, "read", fmt.Sprintf("ngsi:farm1:%d", i%8))
			}
		}()
	}

	for i := 0; i < 100; i++ {
		res := fmt.Sprintf("ngsi:farm1:%d", i%8)
		// Warm the memo with a permit for this exact key.
		if _, err := pep.Authorize(tok.Value, "read", res); err != nil {
			t.Fatalf("warm-up authorize: %v", err)
		}
		pep.pdp.AddPolicy(Policy{ID: "ban", ResourcePattern: res, Effect: Deny})
		if _, err := pep.Authorize(tok.Value, "read", res); !errors.Is(err, ErrDenied) {
			t.Fatalf("iteration %d: stale permit served after AddPolicy: err=%v", i, err)
		}
		pep.pdp.RemovePolicy("ban")
		if _, err := pep.Authorize(tok.Value, "read", res); err != nil {
			t.Fatalf("iteration %d: stale deny served after RemovePolicy: %v", i, err)
		}
	}

	// Revocation path: Introspect guards the memo, so a revoked token is
	// rejected no matter what is cached for its principal.
	if err := tokens.Revoke(tok.Value); err != nil {
		t.Fatal(err)
	}
	if _, err := pep.Authorize(tok.Value, "read", "ngsi:farm1:0"); err == nil || errors.Is(err, ErrDenied) {
		t.Fatalf("revoked token: got %v, want token rejection", err)
	}
	close(stop)
	wg.Wait()
}

// TestMemoHitsAndConditionBypass: repeat decisions hit the memo, and
// installing a Condition policy disables it (closures are uncacheable).
func TestMemoHitsAndConditionBypass(t *testing.T) {
	tokens, pep := newStack(t)
	tok, _ := tokens.GrantPassword("farm1-farmer", "pw")

	for i := 0; i < 5; i++ {
		if _, err := pep.Authorize(tok.Value, "read", "ngsi:farm1:a"); err != nil {
			t.Fatal(err)
		}
	}
	hits := pep.Metrics().Counter("pep.memo.hits").Value()
	if hits < 4 {
		t.Fatalf("memo hits = %d, want >= 4", hits)
	}

	// A conditional policy must bypass the cache: its answer changes
	// between calls without any version bump.
	allow := true
	pep.pdp.AddPolicy(Policy{
		ID:              "flaky",
		ResourcePattern: "ngsi:farm1:cond",
		Effect:          Deny,
		Condition:       func(Request) bool { return !allow },
	})
	if !pep.pdp.Cacheable() {
		// expected
	} else {
		t.Fatal("PDP with a Condition policy reports Cacheable")
	}
	if _, err := pep.Authorize(tok.Value, "read", "ngsi:farm1:cond"); err != nil {
		t.Fatalf("condition-false should permit: %v", err)
	}
	allow = false
	if _, err := pep.Authorize(tok.Value, "read", "ngsi:farm1:cond"); !errors.Is(err, ErrDenied) {
		t.Fatalf("condition-true deny was cached away: %v", err)
	}
	pep.pdp.RemovePolicy("flaky")
	if !pep.pdp.Cacheable() {
		t.Fatal("removing the Condition policy should restore cacheability")
	}
}

// TestMemoKeyCoversRoles: two principals sharing an ID prefix or a
// changed role set must not collide in the memo.
func TestMemoKeyCoversRoles(t *testing.T) {
	a := identity.Principal{ID: "p", Roles: []identity.Role{identity.RoleFarmer}, Owner: "farm1"}
	b := identity.Principal{ID: "p", Roles: []identity.Role{identity.RoleService}, Owner: "farm1"}
	if memoKey(&a, "read", "r") == memoKey(&b, "read", "r") {
		t.Fatal("memo key ignores roles")
	}
	c := identity.Principal{ID: "p", Owner: "farm1x"}
	d := identity.Principal{ID: "px", Owner: "farm1"}
	if memoKey(&c, "read", "r") == memoKey(&d, "read", "r") {
		t.Fatal("memo key concatenation is ambiguous")
	}
}

func TestAuditDroppedCounter(t *testing.T) {
	tokens, base := newStack(t)
	pep := NewPEP(tokens, base.pdp, nil, WithAuditCap(8))
	tok, _ := tokens.GrantPassword("farm1-farmer", "pw")
	for i := 0; i < 20; i++ {
		pep.Authorize(tok.Value, "read", "ngsi:farm1:a")
	}
	if got := pep.Metrics().Counter("security.audit.dropped").Value(); got != 12 {
		t.Fatalf("security.audit.dropped = %d, want 12", got)
	}
	if n := len(pep.Audit()); n != 8 {
		t.Fatalf("retained audit = %d, want 8", n)
	}
}
