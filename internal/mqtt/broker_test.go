package mqtt

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/simnet"
)

// newTestPair connects a client to b over a perfect in-memory link.
func newTestPair(t *testing.T, b *Broker, id string) *Client {
	t.Helper()
	return newTestPairCfg(t, b, ClientConfig{ClientID: id, CleanSession: true})
}

func newTestPairCfg(t *testing.T, b *Broker, cfg ClientConfig) *Client {
	t.Helper()
	ct, st, cleanup, err := NewSimPair(simnet.Config{}, cfg.ClientID)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)
	b.AttachTransport(st)
	c, err := Connect(ct, cfg)
	if err != nil {
		t.Fatalf("connect %s: %v", cfg.ClientID, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}

func TestBrokerPublishSubscribeQoS0(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	pub := newTestPair(t, b, "pub")
	sub := newTestPair(t, b, "sub")

	var got atomic.Value
	if _, err := sub.Subscribe("swamp/+/soil", 0, func(m Message) { got.Store(m) }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("swamp/farm1/soil", []byte("0.21"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return got.Load() != nil })
	m := got.Load().(Message)
	if m.Topic != "swamp/farm1/soil" || string(m.Payload) != "0.21" {
		t.Errorf("got %+v", m)
	}
}

func TestBrokerQoS1EndToEnd(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	pub := newTestPair(t, b, "pub")
	sub := newTestPair(t, b, "sub")

	var n atomic.Int32
	if _, err := sub.Subscribe("q1/topic", 1, func(m Message) { n.Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := pub.Publish("q1/topic", []byte(fmt.Sprintf("m%d", i)), 1, false); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return n.Load() >= 10 })
}

func TestBrokerRetainedMessages(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	pub := newTestPair(t, b, "pub")
	if err := pub.Publish("cfg/zone1", []byte("rate=5"), 1, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return b.RetainedCount() == 1 })

	// A late subscriber must receive the retained message.
	sub := newTestPair(t, b, "late-sub")
	var got atomic.Value
	if _, err := sub.Subscribe("cfg/#", 1, func(m Message) { got.Store(m) }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return got.Load() != nil })
	m := got.Load().(Message)
	if !m.Retain || string(m.Payload) != "rate=5" {
		t.Errorf("retained delivery: %+v", m)
	}

	// Empty retained payload clears it.
	if err := pub.Publish("cfg/zone1", nil, 1, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return b.RetainedCount() == 0 })
}

func TestBrokerAuthRejects(t *testing.T) {
	b := NewBroker(BrokerConfig{
		Auth: func(clientID, username, password string) byte {
			if password != "secret" {
				return ConnRefusedBadAuth
			}
			return ConnAccepted
		},
	})
	defer b.Close()

	ct, st, cleanup, err := NewSimPair(simnet.Config{}, "bad")
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	b.AttachTransport(st)
	if _, err := Connect(ct, ClientConfig{ClientID: "bad", Password: "wrong"}); err == nil {
		t.Fatal("connect with wrong password succeeded")
	}

	good := newTestPairCfg(t, b, ClientConfig{ClientID: "good", Password: "secret"})
	if good.Closed() {
		t.Fatal("good client closed")
	}
}

func TestBrokerACL(t *testing.T) {
	b := NewBroker(BrokerConfig{
		ACL: func(clientID, topic string, write bool) bool {
			// Only "owner" may publish to private topics; everyone reads public.
			if write {
				return clientID == "owner" || topic == "public/x"
			}
			return topic != "private/#" || clientID == "owner"
		},
	})
	defer b.Close()
	owner := newTestPair(t, b, "owner")
	other := newTestPair(t, b, "other")

	var ownerGot, otherGot atomic.Int32
	if _, err := owner.Subscribe("private/#", 0, func(Message) { ownerGot.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := other.Subscribe("private/#", 0, func(Message) { otherGot.Add(1) }); err == nil {
		t.Fatal("unauthorized subscribe granted")
	}

	// other's publish to private must be dropped.
	if err := other.Publish("private/data", []byte("spy"), 0, false); err != nil {
		t.Fatal(err)
	}
	if err := owner.Publish("private/data", []byte("mine"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return ownerGot.Load() == 1 })
	if b.Metrics().Counter("mqtt.publish.denied").Value() == 0 {
		t.Error("denied publish not counted")
	}
}

func TestBrokerSessionTakeover(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	c1 := newTestPair(t, b, "dev")
	_ = newTestPair(t, b, "dev") // same id displaces c1
	waitFor(t, time.Second, func() bool { return c1.Closed() })
	if b.SessionCount() != 1 {
		t.Errorf("session count = %d, want 1", b.SessionCount())
	}
}

func TestBrokerOverTCP(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = b.Serve(ln) }()

	dial := func(id string) *Client {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c, err := Connect(NewStreamTransport(conn), ClientConfig{ClientID: id})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	pub := dial("tcp-pub")
	defer pub.Close()
	sub := dial("tcp-sub")
	defer sub.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	once := sync.Once{}
	if _, err := sub.Subscribe("tcp/t", 1, func(m Message) { once.Do(wg.Done) }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("tcp/t", []byte("hello"), 1, false); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("message not delivered over TCP")
	}
}

// connectLossy dials b over a lossy link, retrying the handshake over fresh
// pairs (CONNECT itself can be lost — as in the field).
func connectLossy(t *testing.T, b *Broker, cfg ClientConfig, link simnet.Config) *Client {
	t.Helper()
	for attempt := 0; attempt < 20; attempt++ {
		link.Seed += int64(attempt * 2)
		ct, st, cleanup, err := NewSimPair(link, cfg.ClientID)
		if err != nil {
			t.Fatal(err)
		}
		b.AttachTransport(st)
		c, err := Connect(ct, cfg)
		if err != nil {
			cleanup()
			continue
		}
		t.Cleanup(func() { c.Close(); cleanup() })
		return c
	}
	t.Fatal("could not connect over lossy link in 20 attempts")
	return nil
}

func TestQoS1SurvivesLossyLink(t *testing.T) {
	b := NewBroker(BrokerConfig{RetryInterval: 20 * time.Millisecond})
	defer b.Close()

	// Publisher on a 30% lossy link; QoS 1 retries must get everything through.
	pub := connectLossy(t, b, ClientConfig{ClientID: "lossy-pub", AckTimeout: 50 * time.Millisecond, PublishRetries: 30},
		simnet.Config{LossProb: 0.3, Seed: 7})

	sub := newTestPair(t, b, "clean-sub")
	seen := make(map[string]bool)
	var mu sync.Mutex
	if _, err := sub.Subscribe("lossy/#", 1, func(m Message) {
		mu.Lock()
		seen[string(m.Payload)] = true
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	const n = 20
	for i := 0; i < n; i++ {
		if err := pub.Publish("lossy/data", []byte(fmt.Sprintf("r%d", i)), 1, false); err != nil {
			t.Fatalf("publish %d failed despite retries: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seen) >= n
	})
}

func TestQoS0DropsOnLossyLink(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	pub := connectLossy(t, b, ClientConfig{ClientID: "q0-pub", AckTimeout: 200 * time.Millisecond, PublishRetries: 50},
		simnet.Config{LossProb: 0.5, Seed: 3})

	sub := newTestPair(t, b, "q0-sub")
	var n atomic.Int32
	if _, err := sub.Subscribe("q0/#", 0, func(Message) { n.Add(1) }); err != nil {
		t.Fatal(err)
	}
	const sent = 200
	for i := 0; i < sent; i++ {
		if err := pub.Publish("q0/data", []byte{byte(i)}, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)
	got := int(n.Load())
	if got == 0 || got >= sent {
		t.Errorf("QoS0 over 50%% loss delivered %d/%d; expected partial delivery", got, sent)
	}
}

func TestInjectPublish(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	sub := newTestPair(t, b, "inj-sub")
	var got atomic.Value
	if _, err := sub.Subscribe("inj/#", 0, func(m Message) { got.Store(m) }); err != nil {
		t.Fatal(err)
	}
	if err := b.InjectPublish("fog-1", "inj/replay", []byte("queued"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return got.Load() != nil })
}

func TestBrokerTapObservesTraffic(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	var tapped atomic.Int32
	b.Tap = func(clientID, topic string, payload []byte, at time.Time) { tapped.Add(1) }
	defer b.Close()
	pub := newTestPair(t, b, "tap-pub")
	for i := 0; i < 5; i++ {
		if err := pub.Publish("tap/x", []byte("v"), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, time.Second, func() bool { return tapped.Load() == 5 })
}

func TestClientUnsubscribe(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	pub := newTestPair(t, b, "u-pub")
	sub := newTestPair(t, b, "u-sub")
	var n atomic.Int32
	if _, err := sub.Subscribe("u/t", 0, func(Message) { n.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("u/t", []byte("1"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return n.Load() == 1 })
	if err := sub.Unsubscribe("u/t"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("u/t", []byte("2"), 0, false); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if n.Load() != 1 {
		t.Errorf("received %d messages after unsubscribe, want 1", n.Load())
	}
}

func TestClientPing(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	c := newTestPair(t, b, "pinger")
	if err := c.Ping(time.Second); err != nil {
		t.Fatalf("ping: %v", err)
	}
}
