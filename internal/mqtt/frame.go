package mqtt

import (
	"sync"
	"sync/atomic"
)

// Frame is one PUBLISH packet encoded once and shared by every subscriber of
// a fan-out. The wire bytes in buf are immutable while any reference is
// live: per-target fix-ups (PacketID, DUP bit) happen in the transport while
// copying into its own write buffer, never in place. Frames are refcounted
// and pooled — route() creates one with refcount 1, each queue or pending
// entry holds its own reference, and the last release returns the frame to
// the pool for reuse.
type Frame struct {
	buf    []byte
	pidOff int // offset of the 2-byte PacketID region; 0 = QoS-0 frame (no id)

	// Decoded fields kept for transports without a frame fast path and for
	// reconstructing retry packets.
	topic   string
	payload []byte
	qos     byte
	refs    atomic.Int32
}

var framePool = sync.Pool{New: func() any { return new(Frame) }}

// newPublishFrame encodes one PUBLISH at the effective qos into a pooled
// buffer. The returned frame has refcount 1 (the caller's reference).
// payload is aliased, not copied — the frame must not outlive it (broker
// publishes own their payload for the duration of the fan-out).
func newPublishFrame(topic string, payload []byte, qos byte, retain bool) *Frame {
	f := framePool.Get().(*Frame)
	f.topic, f.payload, f.qos = topic, payload, qos
	f.refs.Store(1)
	f.buf, f.pidOff = appendPublish(f.buf[:0], topic, payload, qos, retain, false, 0)
	return f
}

// ref takes an additional reference.
func (f *Frame) ref() { f.refs.Add(1) }

// release drops one reference; the last release recycles the frame.
func (f *Frame) release() {
	if f.refs.Add(-1) == 0 {
		f.topic, f.payload = "", nil
		framePool.Put(f)
	}
}

// appendPatched appends f's wire bytes to dst with the per-target PacketID
// and DUP bit applied. The shared buffer is never written.
func (f *Frame) appendPatched(dst []byte, pid uint16, dup bool) []byte {
	b0 := f.buf[0]
	if dup {
		b0 |= 0x08
	}
	dst = append(dst, b0)
	if f.pidOff == 0 {
		return append(dst, f.buf[1:]...)
	}
	dst = append(dst, f.buf[1:f.pidOff]...)
	dst = append(dst, byte(pid>>8), byte(pid))
	return append(dst, f.buf[f.pidOff+2:]...)
}

// packet reconstructs a standalone Packet equivalent to the frame, for
// transports that do not implement FrameWriter.
func (f *Frame) packet(pid uint16, dup bool) *Packet {
	return &Packet{
		Type:     PUBLISH,
		Topic:    f.topic,
		Payload:  f.payload,
		QoS:      f.qos,
		Dup:      dup,
		PacketID: pid,
		Retain:   f.buf[0]&0x01 != 0,
	}
}

// wireLen is the frame's size on the wire, used for flush-watermark
// accounting.
func (f *Frame) wireLen() int { return len(f.buf) }

// FrameWriter is the optional transport fast path for shared frames: the
// transport copies the frame's wire bytes into its own write path, patching
// the PacketID/DUP header region for this target during the copy. Transports
// that don't implement it receive an equivalent Packet via WritePacket.
type FrameWriter interface {
	WriteFrame(f *Frame, pid uint16, dup bool) error
}

// Flusher is implemented by transports that buffer writes. The session
// writer flushes when its queue drains empty or a byte watermark is
// reached; transports without it write through on every packet.
type Flusher interface {
	Flush() error
}

// wirePool recycles encode staging buffers used by WritePacket/WriteFrame
// implementations. Oversized buffers are dropped so one huge payload doesn't
// pin memory.
var wirePool sync.Pool

const maxPooledWire = 64 << 10

func getWire() []byte {
	if v := wirePool.Get(); v != nil {
		return v.([]byte)
	}
	return make([]byte, 0, 512)
}

func putWire(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledWire {
		return
	}
	wirePool.Put(b[:0]) //nolint:staticcheck // slice header box is amortized
}
