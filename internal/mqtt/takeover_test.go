package mqtt

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestSessionTakeoverNoDeliveryToDisplaced: after a reconnect with the same
// client id, the displaced transport must receive no further publishes and
// the broker must track exactly the new session.
func TestSessionTakeoverNoDeliveryToDisplaced(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()

	old := attachScripted(t, b, "dev", "tk/#", 0)
	pub := newTestPair(t, b, "pub")
	if err := pub.Publish("tk/x", []byte("before"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return old.publishCount() == 1 })

	// Reconnect with the same id displaces the old transport.
	fresh := attachScripted(t, b, "dev", "tk/#", 0)
	waitFor(t, time.Second, func() bool {
		select {
		case <-old.closed:
			return true
		default:
			return false
		}
	})
	if b.SessionCount() != 2 { // dev + pub
		t.Errorf("session count = %d, want 2", b.SessionCount())
	}

	for i := 0; i < 5; i++ {
		if err := pub.Publish("tk/x", []byte(fmt.Sprintf("after%d", i)), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, time.Second, func() bool { return fresh.publishCount() == 5 })
	if got := old.publishCount(); got != 1 {
		t.Errorf("displaced transport received %d publishes, want only the pre-takeover 1", got)
	}
}

// TestSessionTakeoverStorm: reconnects with the same client id racing a
// live QoS 1 publish stream. Run under -race; asserts the broker converges
// to one live session for the id and that its pending map drains (no
// per-displacement leak).
func TestSessionTakeoverStorm(t *testing.T) {
	b := NewBroker(BrokerConfig{RetryInterval: 20 * time.Millisecond})
	defer b.Close()

	pub := newTestPair(t, b, "storm-pub")
	stop := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// AckTimeout failures are fine mid-storm; keep publishing.
			_ = pub.Publish("storm/x", []byte{byte(i)}, 1, false)
		}
	}()

	var delivered atomic.Int32
	for i := 0; i < 25; i++ {
		c := newTestPairCfg(t, b, ClientConfig{ClientID: "dev", AckTimeout: 500 * time.Millisecond})
		// The subscribe can lose the race with the next takeover; that is
		// the point of the storm.
		_, _ = c.Subscribe("storm/#", 1, func(Message) { delivered.Add(1) })
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	<-pubDone

	waitFor(t, 2*time.Second, func() bool { return b.SessionCount() == 2 }) // storm-pub + last dev
	b.sessMu.RLock()
	s := b.sessions["dev"]
	b.sessMu.RUnlock()
	if s == nil {
		t.Fatal("no surviving dev session")
	}
	// The survivor's pending map must drain: the client acks everything,
	// and expiry reaps whatever raced the final takeover.
	waitFor(t, 3*time.Second, func() bool {
		s.mu.Lock()
		n := len(s.pending)
		s.mu.Unlock()
		return n == 0
	})
}
