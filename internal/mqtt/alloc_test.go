//go:build !race

// Zero-alloc guards for the steady-state fan-out path. The race detector
// instruments allocations, so these assertions only run in normal builds;
// the race builds cover the same code via the stress suites.

package mqtt

import (
	"runtime"
	"testing"
	"time"
)

// allocSink defeats dead-code elimination in the measured loops.
var allocSink int

// TestQoS0DeliveryPathZeroAlloc pins the headline perf invariant: once the
// route cache, frame pool and wire pool are warm, a QoS-0 publish routed,
// enqueued, drained and written costs zero heap allocations — across ALL
// goroutines, so the session writer's drain/flush path is covered too.
func TestQoS0DeliveryPathZeroAlloc(t *testing.T) {
	// RetryInterval: time.Hour keeps the writer's retry timer from firing
	// (its clock.After allocates once per tick).
	b := NewBroker(BrokerConfig{RetryInterval: time.Hour})
	defer b.Close()

	st := NewSlowTransport(0)
	defer st.Close()
	b.AttachTransport(st)
	st.Inject(&Packet{Type: CONNECT, ClientID: "sink"})
	st.Inject(&Packet{Type: SUBSCRIBE, PacketID: 1, Filters: []Subscription{
		{Filter: "farm/+/soil/#", QoS: 0},
	}})
	waitFor(t, time.Second, func() bool { return b.SessionCount() == 1 })

	payload := []byte("moisture=41.7")
	const topic = "farm/f1/soil/probe2"

	// Warm everything: route cache entry for the topic, frame/wire pools,
	// the writer's batch scratch. Each publish is driven to completion so
	// frames return to the pool before the next iteration.
	want := st.PublishCount()
	pump := func() {
		if err := b.InjectPublish("pub", topic, payload, 0, false); err != nil {
			panic(err)
		}
		want++
		for st.PublishCount() < want {
			runtime.Gosched()
		}
	}
	for i := 0; i < 64; i++ {
		pump()
	}

	allocs := testing.AllocsPerRun(200, pump)
	if allocs != 0 {
		t.Fatalf("QoS-0 publish->route->enqueue->drain path allocates %.3f objects/op, want 0", allocs)
	}
}

// TestTrieMatchZeroAlloc pins the matcher itself: an index-walking trie
// match into a pre-sized scratch slice splits no strings and allocates
// nothing, even with wildcard and multi-level overlap.
func TestTrieMatchZeroAlloc(t *testing.T) {
	tr := newSubTree()
	tr = tr.withSub("farm/+/soil/#", "c1", 1)
	tr = tr.withSub("farm/f1/#", "c2", 0)
	tr = tr.withSub("farm/f1/soil/probe2", "c3", 1)
	tr = tr.withSub("#", "c4", 0)

	scratch := make([]subMatch, 0, 16)
	allocs := testing.AllocsPerRun(1000, func() {
		ms, _ := tr.matchInto("farm/f1/soil/probe2", scratch[:0])
		allocSink = len(ms)
	})
	if allocs != 0 {
		t.Fatalf("trie matchInto allocates %.3f objects/op, want 0", allocs)
	}
	if allocSink != 4 {
		t.Fatalf("matchInto found %d subscriptions, want 4", allocSink)
	}
}
