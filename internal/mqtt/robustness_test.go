package mqtt

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/swamp-project/swamp/internal/simnet"
)

// TestBrokerKeepaliveExpiry: a client that stops talking past 1.5× its
// keepalive is dropped by the broker's janitor.
func TestBrokerKeepaliveExpiry(t *testing.T) {
	b := NewBroker(BrokerConfig{RetryInterval: 20 * time.Millisecond})
	defer b.Close()
	// KeepAlive 0 on the client side disables client pings; the CONNECT
	// still advertises 1 second, so the broker expects traffic.
	ct, st, cleanup, err := NewSimPair(simnet.Config{}, "quiet")
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	b.AttachTransport(st)
	// Hand-roll the connect so no ping loop runs.
	if err := ct.WritePacket(&Packet{Type: CONNECT, ClientID: "quiet", KeepAliveSec: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ct.ReadPacket(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return b.SessionCount() == 1 })
	// Silence > 1.5s → dropped.
	waitFor(t, 4*time.Second, func() bool { return b.SessionCount() == 0 })
}

// TestBrokerSurvivesGarbage: random byte blobs thrown at the broker as
// "first packets" must be rejected without panicking or leaking sessions.
func TestBrokerSurvivesGarbage(t *testing.T) {
	b := NewBroker(BrokerConfig{Logf: func(string, ...any) {}})
	defer b.Close()
	f := func(blob []byte) bool {
		ct, st, cleanup, err := NewSimPair(simnet.Config{}, "garbage")
		if err != nil {
			return false
		}
		defer cleanup()
		b.AttachTransport(st)
		_ = ct.(*SimTransport).ep.Send(blob) // raw frame, bypassing the codec
		time.Sleep(time.Millisecond)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	time.Sleep(20 * time.Millisecond)
	if n := b.SessionCount(); n != 0 {
		t.Errorf("%d sessions leaked from garbage connects", n)
	}
}

// TestBrokerRejectsNonConnectFirst: the first packet must be CONNECT.
func TestBrokerRejectsNonConnectFirst(t *testing.T) {
	b := NewBroker(BrokerConfig{Logf: func(string, ...any) {}})
	defer b.Close()
	ct, st, cleanup, err := NewSimPair(simnet.Config{}, "eager")
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	b.AttachTransport(st)
	if err := ct.WritePacket(&Packet{Type: PUBLISH, Topic: "x", Payload: []byte("y")}); err != nil {
		t.Fatal(err)
	}
	// The broker must close the transport; the next read fails.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if _, err := ct.ReadPacket(); err != nil {
			return
		}
	}
	t.Fatal("broker kept a session that never sent CONNECT")
}

// TestBrokerRejectsEmptyClientID per MQTT 3.1.1 with clean-session
// identifiers required in this implementation.
func TestBrokerRejectsEmptyClientID(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	ct, st, cleanup, err := NewSimPair(simnet.Config{}, "anon")
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	b.AttachTransport(st)
	if err := ct.WritePacket(&Packet{Type: CONNECT, ClientID: ""}); err != nil {
		t.Fatal(err)
	}
	// The broker sends a refusal CONNACK and immediately closes; depending
	// on scheduling the client sees either. Both are a rejection.
	ack, err := ct.ReadPacket()
	if err == nil && (ack.Type != CONNACK || ack.ReturnCode != ConnRefusedIdentifier) {
		t.Errorf("ack = %+v", ack)
	}
	waitFor(t, time.Second, func() bool { return b.SessionCount() == 0 })
}

// TestDecodeFuzzNoPanic feeds random blobs to the packet decoder.
func TestDecodeFuzzNoPanic(t *testing.T) {
	f := func(blob []byte) bool {
		_, _ = Decode(blob) // must not panic; errors are fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestRetainedReplacedNotDuplicated: re-publishing a retained topic keeps
// exactly one retained message with the newest payload.
func TestRetainedReplacedNotDuplicated(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	pub := newTestPair(t, b, "r-pub")
	for i := 0; i < 5; i++ {
		if err := pub.Publish("cfg/x", []byte{byte('0' + i)}, 1, true); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, time.Second, func() bool { return b.RetainedCount() == 1 })
	sub := newTestPair(t, b, "r-sub")
	got := make(chan Message, 4)
	if _, err := sub.Subscribe("cfg/x", 0, func(m Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if string(m.Payload) != "4" {
			t.Errorf("retained payload %q, want newest \"4\"", m.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("no retained delivery")
	}
	select {
	case m := <-got:
		t.Fatalf("duplicate retained delivery: %q", m.Payload)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestManyClientsFanOut: one publish reaches dozens of subscribers.
func TestManyClientsFanOut(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	const n = 40
	got := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		c := newTestPair(t, b, "fan-sub-"+string(rune('a'+i%26))+string(rune('0'+i/26)))
		if _, err := c.Subscribe("fan/#", 0, func(Message) { got <- struct{}{} }); err != nil {
			t.Fatal(err)
		}
	}
	pub := newTestPair(t, b, "fan-pub")
	if err := pub.Publish("fan/x", []byte("v"), 0, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		select {
		case <-got:
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d/%d subscribers reached", i, n)
		}
	}
}
