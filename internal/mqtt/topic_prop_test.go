package mqtt

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// randFilter builds a random, valid topic filter: a few levels drawn from a
// pool that includes wildcards, empty levels and a $-prefixed level, with
// '#' only ever in the final position.
func randFilter(rng *rand.Rand) string {
	pool := []string{"a", "b", "c", "farm", "soil", "+", "", "$SYS", "probe-2"}
	n := 1 + rng.Intn(4)
	levels := make([]string, 0, n)
	for i := 0; i < n; i++ {
		levels = append(levels, pool[rng.Intn(len(pool))])
	}
	if rng.Intn(3) == 0 {
		levels = append(levels, "#")
	}
	f := strings.Join(levels, "/")
	if ValidateTopicFilter(f) != nil {
		return "a/+/#" // rare degenerate case (e.g. lone ""), substitute
	}
	return f
}

// randTopic builds a random concrete topic name (no wildcards), including
// $-prefixed and empty levels.
func randTopic(rng *rand.Rand) string {
	pool := []string{"a", "b", "c", "farm", "soil", "", "$SYS", "probe-2", "x"}
	n := 1 + rng.Intn(4)
	levels := make([]string, 0, n)
	for i := 0; i < n; i++ {
		levels = append(levels, pool[rng.Intn(len(pool))])
	}
	return strings.Join(levels, "/")
}

// TestTrieMatchPropertyVsOracle cross-checks the index-walking trie matcher
// against the reference MatchTopic predicate over randomized subscription
// sets and topics, including the $-prefix rule, trailing '#', '+' against
// empty levels, and overlapping filters per client (highest QoS wins).
func TestTrieMatchPropertyVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7)) // deterministic: no flaky CI
	clients := []string{"c0", "c1", "c2", "c3", "c4"}
	for iter := 0; iter < 300; iter++ {
		tr := newSubTree()
		type sub struct {
			client, filter string
			qos            byte
		}
		var subsList []sub
		nSubs := 1 + rng.Intn(10)
		for i := 0; i < nSubs; i++ {
			s := sub{
				client: clients[rng.Intn(len(clients))],
				filter: randFilter(rng),
				qos:    byte(rng.Intn(2)),
			}
			subsList = append(subsList, s)
			tr = tr.withSub(s.filter, s.client, s.qos)
		}
		for k := 0; k < 20; k++ {
			topic := randTopic(rng)
			got := tr.match(topic)
			// Oracle: per client, the max QoS over its matching filters.
			// Later withSub for the same (client, filter) overwrites, so
			// walk the list keeping the last QoS per exact filter first.
			lastQoS := map[string]byte{}
			for _, s := range subsList {
				lastQoS[s.client+"\x00"+s.filter] = s.qos
			}
			want := map[string]byte{}
			for key, q := range lastQoS {
				cf := strings.SplitN(key, "\x00", 2)
				if MatchTopic(cf[1], topic) {
					if cur, ok := want[cf[0]]; !ok || q > cur {
						want[cf[0]] = q
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("iter %d topic %q: trie matched %v, oracle %v (subs %v)", iter, topic, got, want, subsList)
			}
			for id, q := range want {
				if gq, ok := got[id]; !ok || gq != q {
					t.Fatalf("iter %d topic %q client %s: trie qos=%d,ok=%v, oracle qos=%d (subs %v)", iter, topic, id, gq, ok, q, subsList)
				}
			}
		}
	}
}

// TestStalledEpochNeverServesRemovedSub drives the route cache's epoch
// invalidation end-to-end: after an unsubscribe bumps the epoch, the very
// next publish must rebuild the route and skip the removed subscriber.
// (Named to run under the CI stress matrix alongside the queue suites.)
func TestStalledEpochNeverServesRemovedSub(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()

	sub1 := attachScripted(t, b, "epoch-a", "ep/#", 0)
	sub2 := attachScripted(t, b, "epoch-b", "ep/#", 0)

	if err := b.InjectPublish("pub", "ep/t", []byte("1"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool {
		return sub1.publishCount() == 1 && sub2.publishCount() == 1
	})

	// Unsubscribe epoch-a, then publish again on the (cached) topic.
	sub1.send(&Packet{Type: UNSUBSCRIBE, PacketID: 9, Filters: []Subscription{{Filter: "ep/#"}}})
	waitFor(t, time.Second, func() bool {
		sub1.mu.Lock()
		defer sub1.mu.Unlock()
		for _, p := range sub1.wrote {
			if p.Type == UNSUBACK {
				return true
			}
		}
		return false
	})
	if err := b.InjectPublish("pub", "ep/t", []byte("2"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return sub2.publishCount() == 2 })
	if n := sub1.publishCount(); n != 1 {
		t.Fatalf("unsubscribed client received %d publishes, want 1 (stale route served)", n)
	}
}

// TestOverflowFreeConcurrentTrieMutation hammers the COW trie from
// concurrent mutators and matchers. Under -race this proves the published
// tree is never written after the pointer swap; without -race it still
// checks matchers always observe internally consistent trees.
func TestOverflowFreeConcurrentTrieMutation(t *testing.T) {
	var root atomic.Pointer[subTree]
	root.Store(newSubTree())
	var mu sync.Mutex // serialises mutators, as subMu does in the broker

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Two mutators add/remove disjoint client subscriptions.
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(len(id))))
			filters := []string{"a/+/c", "a/#", "a/b/c", "x/y", "+/+/+"}
			for {
				select {
				case <-stop:
					return
				default:
				}
				f := filters[rng.Intn(len(filters))]
				mu.Lock()
				if rng.Intn(2) == 0 {
					root.Store(root.Load().withSub(f, id, byte(rng.Intn(2))))
				} else {
					nt, _ := root.Load().withoutSub(f, id)
					root.Store(nt)
				}
				mu.Unlock()
			}
		}("mut" + string(rune('0'+m)))
	}

	// Four matchers walk whatever tree is current.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			topics := []string{"a/b/c", "a/zz", "x/y", "a", "q/r/s"}
			scratch := make([]subMatch, 0, 8)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr := root.Load()
				ms, _ := tr.matchInto(topics[i%len(topics)], scratch[:0])
				for _, m := range ms {
					if m.qos > 1 {
						t.Errorf("corrupt match qos %d", m.qos)
						return
					}
				}
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}
