package mqtt

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestClientOverlappingSubscriptions: a message matching several filters
// fires every matching handler, not just the first registered one.
func TestClientOverlappingSubscriptions(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	pub := newTestPair(t, b, "pub")
	sub := newTestPair(t, b, "sub")

	var narrow, wide atomic.Int32
	if _, err := sub.Subscribe("farm/+/soil", 0, func(Message) { narrow.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Subscribe("farm/#", 0, func(Message) { wide.Add(1) }); err != nil {
		t.Fatal(err)
	}

	if err := pub.Publish("farm/f1/soil", []byte("0.2"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return narrow.Load() == 1 && wide.Load() == 1 })

	// A topic matching only the wide filter fires only that handler.
	if err := pub.Publish("farm/f1/weather", []byte("30"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return wide.Load() == 2 })
	time.Sleep(20 * time.Millisecond)
	if narrow.Load() != 1 {
		t.Errorf("narrow handler fired %d times, want 1", narrow.Load())
	}
}

// TestFailedResubscribeKeepsPreviousHandler: when a re-subscribe on an
// already-granted filter is rejected by the broker, the previous handler
// must be restored — the broker still delivers for the original grant, and
// losing the handler would silently drop those messages.
func TestFailedResubscribeKeepsPreviousHandler(t *testing.T) {
	var denySubs atomic.Bool
	b := NewBroker(BrokerConfig{
		ACL: func(clientID, topic string, write bool) bool {
			return write || !denySubs.Load()
		},
	})
	defer b.Close()
	pub := newTestPair(t, b, "pub")
	sub := newTestPair(t, b, "sub")

	var got atomic.Int32
	if _, err := sub.Subscribe("rs/t", 0, func(Message) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	denySubs.Store(true)
	if _, err := sub.Subscribe("rs/t", 0, func(Message) {}); err == nil {
		t.Fatal("denied re-subscribe succeeded")
	}
	// The original grant is intact broker-side; the original handler must
	// still fire.
	if err := pub.Publish("rs/t", []byte("v"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return got.Load() == 1 })
}

// TestClientResubscribeReplacesHandler: subscribing twice to the same
// filter replaces the handler instead of accumulating entries, and
// Unsubscribe removes the subscription entirely — no stale handler keeps
// firing on messages the broker no longer tracks for this client.
func TestClientResubscribeReplacesHandler(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	pub := newTestPair(t, b, "pub")
	sub := newTestPair(t, b, "sub")

	var first, second atomic.Int32
	if _, err := sub.Subscribe("re/t", 0, func(Message) { first.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Subscribe("re/t", 0, func(Message) { second.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("re/t", []byte("1"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return second.Load() == 1 })
	if first.Load() != 0 {
		t.Errorf("replaced handler still fired %d times", first.Load())
	}

	// After Unsubscribe no handler remains: a broker-side message for the
	// filter (published before the broker processes anything further) must
	// not reach either handler, and the default handler must not see
	// messages for a filter that was never re-added.
	if err := sub.Unsubscribe("re/t"); err != nil {
		t.Fatal(err)
	}
	var stray atomic.Int32
	sub.DefaultHandler = func(Message) { stray.Add(1) }
	if err := pub.Publish("re/t", []byte("2"), 0, false); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if second.Load() != 1 || first.Load() != 0 {
		t.Errorf("stale handler fired after unsubscribe: first=%d second=%d", first.Load(), second.Load())
	}
	if stray.Load() != 0 {
		t.Errorf("broker delivered %d messages after unsubscribe", stray.Load())
	}

	// The client's sub table is actually empty (removeSub removed every
	// entry, not just the first).
	sub.mu.Lock()
	n := len(sub.subs)
	sub.mu.Unlock()
	if n != 0 {
		t.Errorf("client retains %d subscription entries after unsubscribe", n)
	}
}
