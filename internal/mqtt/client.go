package mqtt

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Message is a received publication handed to a subscription handler.
type Message struct {
	Topic   string
	Payload []byte
	QoS     byte
	Retain  bool
	Dup     bool
}

// Handler consumes messages for a subscription. Handlers run on the
// client's read loop: they must not block for long.
type Handler func(Message)

// ClientConfig configures a Client.
type ClientConfig struct {
	ClientID     string
	Username     string
	Password     string
	KeepAlive    time.Duration // 0 disables client pings
	CleanSession bool
	// AckTimeout bounds waits for CONNACK/SUBACK/PUBACK (default 2s).
	AckTimeout time.Duration
	// PublishRetries is how many times a QoS 1 publish is retransmitted
	// before giving up (default 5).
	PublishRetries int
}

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("mqtt: client closed")

// ErrAckTimeout is returned when the broker does not acknowledge in time
// (wrapped with context).
var ErrAckTimeout = errors.New("mqtt: ack timeout")

// Client is an MQTT client running over any Transport. Construct with
// Connect. Safe for concurrent use.
type Client struct {
	cfg ClientConfig
	t   Transport

	mu       sync.Mutex
	nextID   uint16
	acks     map[uint16]chan *Packet // PUBACK / SUBACK / UNSUBACK waiters
	subs     []clientSub
	closed   bool
	closeErr error

	pingpong chan struct{}
	done     chan struct{}
	wg       sync.WaitGroup

	// DefaultHandler receives messages that match no registered
	// subscription handler (e.g. retained floods). May be nil.
	DefaultHandler Handler
}

type clientSub struct {
	filter  string
	handler Handler
}

// Connect performs the MQTT handshake over t and starts the client loops.
// On error the transport is closed.
func Connect(t Transport, cfg ClientConfig) (*Client, error) {
	if cfg.ClientID == "" {
		t.Close()
		return nil, fmt.Errorf("mqtt: empty client id")
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 2 * time.Second
	}
	if cfg.PublishRetries <= 0 {
		cfg.PublishRetries = 5
	}
	c := &Client{
		cfg:      cfg,
		t:        t,
		acks:     make(map[uint16]chan *Packet),
		pingpong: make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	conn := &Packet{
		Type:         CONNECT,
		ClientID:     cfg.ClientID,
		Username:     cfg.Username,
		Password:     cfg.Password,
		KeepAliveSec: uint16(cfg.KeepAlive / time.Second),
		CleanSession: cfg.CleanSession,
	}
	if err := t.WritePacket(conn); err != nil {
		t.Close()
		return nil, fmt.Errorf("mqtt connect: %w", err)
	}
	ack, err := c.readWithTimeout(cfg.AckTimeout)
	if err != nil {
		t.Close()
		return nil, fmt.Errorf("mqtt connect: waiting CONNACK: %w", err)
	}
	if ack.Type != CONNACK {
		t.Close()
		return nil, fmt.Errorf("mqtt connect: got %v, want CONNACK", ack.Type)
	}
	if ack.ReturnCode != ConnAccepted {
		t.Close()
		return nil, fmt.Errorf("mqtt connect: refused (code %d)", ack.ReturnCode)
	}

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.readLoop()
	}()
	if cfg.KeepAlive > 0 {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.pingLoop()
		}()
	}
	return c, nil
}

// ackTimerPool recycles the timers bounding PUBACK/SUBACK/PINGRESP waits.
// A QoS 1 publisher arms one timer per publish; with time.After each would
// be a fresh runtime timer living the full AckTimeout — allocation and
// timer-heap churn that dominates paced publish loops.
var ackTimerPool sync.Pool

func getAckTimer(d time.Duration) *time.Timer {
	if v := ackTimerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// putAckTimer returns a timer whose channel is empty or fired-and-drained;
// both states are safe to Reset after the Stop+drain here.
func putAckTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	ackTimerPool.Put(t)
}

// readWithTimeout reads one packet before the client loops start.
func (c *Client) readWithTimeout(d time.Duration) (*Packet, error) {
	type res struct {
		p   *Packet
		err error
	}
	ch := make(chan res, 1)
	go func() {
		p, err := c.t.ReadPacket()
		ch <- res{p, err}
	}()
	select {
	case r := <-ch:
		return r.p, r.err
	case <-time.After(d):
		return nil, ErrAckTimeout
	}
}

// Close disconnects cleanly and releases the client goroutines.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	_ = c.t.WritePacket(&Packet{Type: DISCONNECT})
	close(c.done)
	err := c.t.Close()
	c.wg.Wait()
	return err
}

// Closed reports whether the client has shut down (by Close or broker
// disconnect).
func (c *Client) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *Client) readLoop() {
	for {
		pkt, err := c.t.ReadPacket()
		if err != nil {
			c.mu.Lock()
			if !c.closed {
				c.closed = true
				c.closeErr = err
				close(c.done)
			}
			c.mu.Unlock()
			return
		}
		switch pkt.Type {
		case PUBLISH:
			c.dispatch(pkt)
			if pkt.QoS == 1 {
				_ = c.t.WritePacket(&Packet{Type: PUBACK, PacketID: pkt.PacketID})
			}
		case PUBACK, SUBACK, UNSUBACK:
			c.mu.Lock()
			ch := c.acks[pkt.PacketID]
			delete(c.acks, pkt.PacketID)
			c.mu.Unlock()
			if ch != nil {
				ch <- pkt
			}
		case PINGRESP:
			select {
			case c.pingpong <- struct{}{}:
			default:
			}
		}
	}
}

func (c *Client) dispatch(pkt *Packet) {
	msg := Message{Topic: pkt.Topic, Payload: pkt.Payload, QoS: pkt.QoS, Retain: pkt.Retain, Dup: pkt.Dup}
	// A message can match several overlapping filters (e.g. "farm/+/soil"
	// and "farm/#"); every matching handler fires, not just the first. The
	// common single-match case avoids building a slice per message.
	c.mu.Lock()
	var first Handler
	var rest []Handler
	for _, s := range c.subs {
		if MatchTopic(s.filter, pkt.Topic) {
			if first == nil {
				first = s.handler
			} else {
				rest = append(rest, s.handler)
			}
		}
	}
	c.mu.Unlock()
	if first == nil {
		if h := c.DefaultHandler; h != nil {
			h(msg)
		}
		return
	}
	first(msg)
	for _, h := range rest {
		h(msg)
	}
}

func (c *Client) pingLoop() {
	tick := time.NewTicker(c.cfg.KeepAlive)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
			if err := c.t.WritePacket(&Packet{Type: PINGREQ}); err != nil {
				return
			}
		}
	}
}

// allocAck registers an ack waiter and returns (packetID, channel).
func (c *Client) allocAck() (uint16, chan *Packet, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, nil, ErrClientClosed
	}
	for {
		c.nextID++
		if c.nextID == 0 {
			c.nextID = 1
		}
		if _, used := c.acks[c.nextID]; !used {
			break
		}
	}
	ch := make(chan *Packet, 1)
	c.acks[c.nextID] = ch
	return c.nextID, ch, nil
}

func (c *Client) dropAck(id uint16) {
	c.mu.Lock()
	delete(c.acks, id)
	c.mu.Unlock()
}

// Publish sends one message. QoS 0 is fire-and-forget; QoS 1 blocks until
// PUBACK, retransmitting with the DUP flag up to PublishRetries times —
// this is the mechanism that survives lossy rural links.
func (c *Client) Publish(topic string, payload []byte, qos byte, retain bool) error {
	if qos > 1 {
		return fmt.Errorf("mqtt: QoS %d unsupported", qos)
	}
	if err := ValidateTopicName(topic); err != nil {
		return err
	}
	if qos == 0 {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return ErrClientClosed
		}
		return c.t.WritePacket(&Packet{Type: PUBLISH, Topic: topic, Payload: payload, Retain: retain})
	}

	id, ch, err := c.allocAck()
	if err != nil {
		return err
	}
	defer c.dropAck(id)
	pkt := &Packet{Type: PUBLISH, Topic: topic, Payload: payload, QoS: 1, Retain: retain, PacketID: id}
	for attempt := 0; attempt <= c.cfg.PublishRetries; attempt++ {
		if attempt > 0 {
			pkt.Dup = true
		}
		if err := c.t.WritePacket(pkt); err != nil {
			return fmt.Errorf("mqtt publish %q: %w", topic, err)
		}
		timer := getAckTimer(c.cfg.AckTimeout)
		select {
		case <-ch:
			putAckTimer(timer)
			return nil
		case <-timer.C:
			putAckTimer(timer)
			// retransmit
		case <-c.done:
			putAckTimer(timer)
			return ErrClientClosed
		}
	}
	return fmt.Errorf("mqtt publish %q: %w after %d attempts", topic, ErrAckTimeout, c.cfg.PublishRetries+1)
}

// Subscribe registers handler for filter and waits for the broker grant.
// It returns the granted QoS.
func (c *Client) Subscribe(filter string, qos byte, handler Handler) (byte, error) {
	if err := ValidateTopicFilter(filter); err != nil {
		return 0, err
	}
	if qos > 1 {
		qos = 1
	}
	id, ch, err := c.allocAck()
	if err != nil {
		return 0, err
	}
	defer c.dropAck(id)

	// Register the handler before SUBACK so retained messages delivered
	// immediately after the grant are not missed. A re-subscribe on the
	// same filter replaces the previous handler: the broker keeps one
	// subscription per (client, filter), so must the client — appending
	// would leave a stale handler alive after Unsubscribe.
	c.mu.Lock()
	var prev Handler
	replaced := false
	for i, s := range c.subs {
		if s.filter == filter {
			prev = s.handler
			c.subs[i].handler = handler
			replaced = true
			break
		}
	}
	if !replaced {
		c.subs = append(c.subs, clientSub{filter: filter, handler: handler})
	}
	c.mu.Unlock()
	// On failure, a fresh subscribe is removed outright; a failed
	// re-subscribe restores the previous, still-granted handler — the
	// broker keeps delivering for the old grant either way.
	rollback := func() {
		if !replaced {
			c.removeSub(filter)
			return
		}
		c.mu.Lock()
		for i, s := range c.subs {
			if s.filter == filter {
				c.subs[i].handler = prev
				break
			}
		}
		c.mu.Unlock()
	}

	pkt := &Packet{Type: SUBSCRIBE, PacketID: id, Filters: []Subscription{{Filter: filter, QoS: qos}}}
	if err := c.t.WritePacket(pkt); err != nil {
		rollback()
		return 0, fmt.Errorf("mqtt subscribe %q: %w", filter, err)
	}
	timer := getAckTimer(c.cfg.AckTimeout)
	defer putAckTimer(timer)
	select {
	case ack := <-ch:
		if len(ack.GrantedQoS) != 1 || ack.GrantedQoS[0] == 0x80 {
			rollback()
			return 0, fmt.Errorf("mqtt subscribe %q: rejected by broker", filter)
		}
		return ack.GrantedQoS[0], nil
	case <-timer.C:
		rollback()
		return 0, fmt.Errorf("mqtt subscribe %q: %w", filter, ErrAckTimeout)
	case <-c.done:
		return 0, ErrClientClosed
	}
}

// Unsubscribe removes the subscription for filter.
func (c *Client) Unsubscribe(filter string) error {
	id, ch, err := c.allocAck()
	if err != nil {
		return err
	}
	defer c.dropAck(id)
	pkt := &Packet{Type: UNSUBSCRIBE, PacketID: id, Filters: []Subscription{{Filter: filter}}}
	if err := c.t.WritePacket(pkt); err != nil {
		return fmt.Errorf("mqtt unsubscribe %q: %w", filter, err)
	}
	timer := getAckTimer(c.cfg.AckTimeout)
	defer putAckTimer(timer)
	select {
	case <-ch:
		c.removeSub(filter)
		return nil
	case <-timer.C:
		return fmt.Errorf("mqtt unsubscribe %q: %w", filter, ErrAckTimeout)
	case <-c.done:
		return ErrClientClosed
	}
}

func (c *Client) removeSub(filter string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.subs[:0]
	for _, s := range c.subs {
		if s.filter != filter {
			kept = append(kept, s)
		}
	}
	c.subs = kept
}

// Ping sends a PINGREQ and waits for the PINGRESP, useful as a liveness
// probe over impaired links.
func (c *Client) Ping(timeout time.Duration) error {
	select {
	case <-c.pingpong: // drain stale pong
	default:
	}
	if err := c.t.WritePacket(&Packet{Type: PINGREQ}); err != nil {
		return err
	}
	timer := getAckTimer(timeout)
	defer putAckTimer(timer)
	select {
	case <-c.pingpong:
		return nil
	case <-timer.C:
		return ErrAckTimeout
	case <-c.done:
		return ErrClientClosed
	}
}
