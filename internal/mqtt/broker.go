package mqtt

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
)

// AuthFunc authenticates a connecting client and returns an MQTT connect
// return code (ConnAccepted to admit). It is the hook the SWAMP security
// layer plugs into (device API keys, OAuth bearer passwords).
type AuthFunc func(clientID, username, password string) byte

// ACLFunc authorizes one topic operation. write=true means publish,
// write=false means subscribe. Returning false rejects the operation.
type ACLFunc func(clientID, topic string, write bool) bool

// BrokerConfig tunes broker behaviour. The zero value is usable.
type BrokerConfig struct {
	// Auth is consulted on CONNECT; nil admits everyone.
	Auth AuthFunc
	// ACL is consulted on PUBLISH and SUBSCRIBE; nil allows everything.
	ACL ACLFunc
	// RetryInterval is the QoS 1 redelivery interval (default 1s).
	RetryInterval time.Duration
	// MaxRetries bounds QoS 1 redeliveries before the message is dropped
	// (default 5).
	MaxRetries int
	// Metrics receives broker counters; nil allocates a private registry.
	Metrics *metrics.Registry
	// Logf receives diagnostics; nil means log.Printf.
	Logf func(format string, args ...any)
}

// Broker is an MQTT 3.1.1-subset message broker. Construct with NewBroker;
// attach clients with Serve (TCP) and/or AttachTransport (simulated links).
type Broker struct {
	cfg BrokerConfig
	reg *metrics.Registry

	mu       sync.Mutex
	sessions map[string]*session
	subs     *subTree
	retained map[string]retainedMsg
	closed   bool

	wg   sync.WaitGroup
	done chan struct{}

	// Hot-path counters, resolved once: the northbound bridge pushes every
	// sensor reading through publish/deliver, so per-message registry map
	// lookups add up.
	cPubIn, cPubDenied, cDeliverOut, cDeliverErr *metrics.Counter

	// Tap, if set, observes every PUBLISH routed by the broker. The anomaly
	// detection layer uses it as its traffic feed. Must be set before
	// clients attach. The callback must not block.
	Tap func(clientID, topic string, payload []byte, at time.Time)
}

type retainedMsg struct {
	payload []byte
	qos     byte
}

// NewBroker constructs a broker ready to accept transports.
func NewBroker(cfg BrokerConfig) *Broker {
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return &Broker{
		cfg:      cfg,
		reg:      cfg.Metrics,
		sessions: make(map[string]*session),
		subs:     newSubTree(),
		retained: make(map[string]retainedMsg),
		done:     make(chan struct{}),

		cPubIn:      cfg.Metrics.Counter("mqtt.publish.in"),
		cPubDenied:  cfg.Metrics.Counter("mqtt.publish.denied"),
		cDeliverOut: cfg.Metrics.Counter("mqtt.deliver.out"),
		cDeliverErr: cfg.Metrics.Counter("mqtt.deliver.err"),
	}
}

// Metrics returns the broker's metrics registry.
func (b *Broker) Metrics() *metrics.Registry { return b.reg }

// Serve accepts TCP connections on ln until the broker is closed or the
// listener fails. It blocks; run it in a goroutine.
func (b *Broker) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-b.done:
				return nil
			default:
				return fmt.Errorf("mqtt broker: accept: %w", err)
			}
		}
		b.AttachTransport(NewStreamTransport(conn))
	}
}

// AttachTransport hands a connected transport to the broker, which serves
// it on its own goroutine until disconnect.
func (b *Broker) AttachTransport(t Transport) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		t.Close()
		return
	}
	b.wg.Add(1)
	b.mu.Unlock()
	go func() {
		defer b.wg.Done()
		b.serveTransport(t)
	}()
}

// Close disconnects every client and waits for connection goroutines.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	sessions := make([]*session, 0, len(b.sessions))
	for _, s := range b.sessions {
		sessions = append(sessions, s)
	}
	b.mu.Unlock()
	close(b.done)
	for _, s := range sessions {
		s.close()
	}
	b.wg.Wait()
}

// SessionCount returns the number of connected clients.
func (b *Broker) SessionCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.sessions)
}

// RetainedCount returns the number of retained topics.
func (b *Broker) RetainedCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.retained)
}

// session is one connected client.
type session struct {
	id        string
	transport Transport
	broker    *Broker

	mu       sync.Mutex
	pending  map[uint16]*pendingPub
	nextID   uint16
	lastSeen time.Time
	keep     time.Duration
	done     chan struct{}
	closedFl bool
}

type pendingPub struct {
	pkt     *Packet
	sentAt  time.Time
	retries int
}

func (s *session) close() {
	s.mu.Lock()
	if s.closedFl {
		s.mu.Unlock()
		return
	}
	s.closedFl = true
	s.mu.Unlock()
	close(s.done)
	s.transport.Close()
}

func (s *session) touch() {
	s.mu.Lock()
	s.lastSeen = time.Now()
	s.mu.Unlock()
}

func (b *Broker) serveTransport(t Transport) {
	// First packet must be CONNECT.
	first, err := t.ReadPacket()
	if err != nil {
		t.Close()
		return
	}
	if first.Type != CONNECT {
		b.cfg.Logf("mqtt broker: %s: first packet %v, want CONNECT", t.RemoteAddr(), first.Type)
		t.Close()
		return
	}
	if first.ClientID == "" {
		_ = t.WritePacket(&Packet{Type: CONNACK, ReturnCode: ConnRefusedIdentifier})
		t.Close()
		return
	}
	if b.cfg.Auth != nil {
		if code := b.cfg.Auth(first.ClientID, first.Username, first.Password); code != ConnAccepted {
			b.reg.Counter("mqtt.connect.refused").Inc()
			_ = t.WritePacket(&Packet{Type: CONNACK, ReturnCode: code})
			t.Close()
			return
		}
	}

	s := &session{
		id:        first.ClientID,
		transport: t,
		broker:    b,
		pending:   make(map[uint16]*pendingPub),
		lastSeen:  time.Now(),
		keep:      time.Duration(first.KeepAliveSec) * time.Second,
		done:      make(chan struct{}),
	}

	// Session takeover: a reconnect with the same client id displaces the
	// old connection (3.1.1 §3.1.4).
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		t.Close()
		return
	}
	if old := b.sessions[s.id]; old != nil {
		old.close()
		b.subs.removeAll(s.id)
	}
	b.sessions[s.id] = s
	b.mu.Unlock()

	if err := t.WritePacket(&Packet{Type: CONNACK, ReturnCode: ConnAccepted}); err != nil {
		b.dropSession(s)
		return
	}
	b.reg.Counter("mqtt.connect.accepted").Inc()

	// QoS 1 redelivery + keepalive watchdog.
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.sessionJanitor(s)
	}()

	for {
		pkt, err := t.ReadPacket()
		if err != nil {
			break
		}
		s.touch()
		if stop := b.handlePacket(s, pkt); stop {
			break
		}
	}
	b.dropSession(s)
}

// handlePacket processes one inbound packet; it reports whether the session
// should end.
func (b *Broker) handlePacket(s *session, pkt *Packet) (stop bool) {
	switch pkt.Type {
	case PUBLISH:
		b.handlePublish(s, pkt)
	case PUBACK:
		s.mu.Lock()
		delete(s.pending, pkt.PacketID)
		s.mu.Unlock()
	case SUBSCRIBE:
		b.handleSubscribe(s, pkt)
	case UNSUBSCRIBE:
		b.handleUnsubscribe(s, pkt)
	case PINGREQ:
		_ = s.transport.WritePacket(&Packet{Type: PINGRESP})
	case DISCONNECT:
		return true
	default:
		b.cfg.Logf("mqtt broker: %s sent unexpected %v", s.id, pkt.Type)
		return true
	}
	return false
}

func (b *Broker) handlePublish(s *session, pkt *Packet) {
	if err := ValidateTopicName(pkt.Topic); err != nil {
		b.cfg.Logf("mqtt broker: %s: %v", s.id, err)
		return
	}
	if b.cfg.ACL != nil && !b.cfg.ACL(s.id, pkt.Topic, true) {
		b.cPubDenied.Inc()
		return
	}
	b.cPubIn.Inc()
	if pkt.QoS == 1 {
		_ = s.transport.WritePacket(&Packet{Type: PUBACK, PacketID: pkt.PacketID})
	}
	if pkt.Retain {
		b.mu.Lock()
		if len(pkt.Payload) == 0 {
			delete(b.retained, pkt.Topic)
		} else {
			b.retained[pkt.Topic] = retainedMsg{payload: pkt.Payload, qos: pkt.QoS}
		}
		b.mu.Unlock()
	}
	if tap := b.Tap; tap != nil {
		tap(s.id, pkt.Topic, pkt.Payload, time.Now())
	}
	b.route(pkt)
}

// route fans a publish out to matching subscribers.
func (b *Broker) route(pkt *Packet) {
	b.mu.Lock()
	matches := b.subs.match(pkt.Topic)
	targets := make([]*session, 0, len(matches))
	qoss := make([]byte, 0, len(matches))
	for id, subQoS := range matches {
		if sess := b.sessions[id]; sess != nil {
			targets = append(targets, sess)
			q := pkt.QoS
			if subQoS < q {
				q = subQoS
			}
			qoss = append(qoss, q)
		}
	}
	b.mu.Unlock()

	for i, sess := range targets {
		b.deliver(sess, pkt.Topic, pkt.Payload, qoss[i], false)
	}
}

// deliver writes one PUBLISH to a subscriber, tracking it for redelivery if
// QoS 1.
func (b *Broker) deliver(s *session, topic string, payload []byte, qos byte, retain bool) {
	out := &Packet{Type: PUBLISH, Topic: topic, Payload: payload, QoS: qos, Retain: retain}
	if qos == 1 {
		s.mu.Lock()
		id := s.allocPacketIDLocked()
		out.PacketID = id
		s.pending[id] = &pendingPub{pkt: out, sentAt: time.Now()}
		s.mu.Unlock()
	}
	if err := s.transport.WritePacket(out); err != nil {
		b.cDeliverErr.Inc()
		return
	}
	b.cDeliverOut.Inc()
}

// allocPacketIDLocked returns the next free packet id; s.mu must be held.
func (s *session) allocPacketIDLocked() uint16 {
	for {
		s.nextID++
		if s.nextID == 0 {
			s.nextID = 1
		}
		if _, used := s.pending[s.nextID]; !used {
			return s.nextID
		}
	}
}

func (b *Broker) handleSubscribe(s *session, pkt *Packet) {
	granted := make([]byte, len(pkt.Filters))
	accepted := make([]Subscription, 0, len(pkt.Filters))
	for i, f := range pkt.Filters {
		qos := f.QoS
		if qos > 1 {
			qos = 1 // downgrade: broker supports QoS 0/1
		}
		if err := ValidateTopicFilter(f.Filter); err != nil {
			granted[i] = 0x80
			continue
		}
		if b.cfg.ACL != nil && !b.cfg.ACL(s.id, f.Filter, false) {
			b.reg.Counter("mqtt.subscribe.denied").Inc()
			granted[i] = 0x80
			continue
		}
		granted[i] = qos
		accepted = append(accepted, Subscription{Filter: f.Filter, QoS: qos})
	}

	b.mu.Lock()
	for _, f := range accepted {
		b.subs.add(f.Filter, s.id, f.QoS)
	}
	// Snapshot retained messages matching the new filters.
	type retRef struct {
		topic string
		msg   retainedMsg
		qos   byte
	}
	var rets []retRef
	for topic, msg := range b.retained {
		for _, f := range accepted {
			if MatchTopic(f.Filter, topic) {
				q := msg.qos
				if f.QoS < q {
					q = f.QoS
				}
				rets = append(rets, retRef{topic: topic, msg: msg, qos: q})
				break
			}
		}
	}
	b.mu.Unlock()

	_ = s.transport.WritePacket(&Packet{Type: SUBACK, PacketID: pkt.PacketID, GrantedQoS: granted})
	for _, r := range rets {
		b.deliver(s, r.topic, r.msg.payload, r.qos, true)
	}
	b.reg.Counter("mqtt.subscribe.ok").Add(uint64(len(accepted)))
}

func (b *Broker) handleUnsubscribe(s *session, pkt *Packet) {
	b.mu.Lock()
	for _, f := range pkt.Filters {
		b.subs.remove(f.Filter, s.id)
	}
	b.mu.Unlock()
	_ = s.transport.WritePacket(&Packet{Type: UNSUBACK, PacketID: pkt.PacketID})
}

// sessionJanitor periodically redelivers unacknowledged QoS 1 messages and
// enforces the keepalive deadline.
func (b *Broker) sessionJanitor(s *session) {
	tick := time.NewTicker(b.cfg.RetryInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-b.done:
			return
		case now := <-tick.C:
			var resend []*Packet
			expired := false
			s.mu.Lock()
			for id, p := range s.pending {
				if now.Sub(p.sentAt) < b.cfg.RetryInterval {
					continue
				}
				if p.retries >= b.cfg.MaxRetries {
					delete(s.pending, id)
					b.reg.Counter("mqtt.deliver.expired").Inc()
					continue
				}
				p.retries++
				p.sentAt = now
				dup := *p.pkt
				dup.Dup = true
				resend = append(resend, &dup)
			}
			if s.keep > 0 && now.Sub(s.lastSeen) > s.keep*3/2 {
				expired = true
			}
			s.mu.Unlock()
			for _, pkt := range resend {
				if err := s.transport.WritePacket(pkt); err != nil {
					break
				}
				b.reg.Counter("mqtt.deliver.retry").Inc()
			}
			if expired {
				b.cfg.Logf("mqtt broker: %s keepalive expired", s.id)
				b.dropSession(s)
				return
			}
		}
	}
}

// dropSession removes s from the broker and closes its transport.
func (b *Broker) dropSession(s *session) {
	b.mu.Lock()
	if b.sessions[s.id] == s {
		delete(b.sessions, s.id)
		b.subs.removeAll(s.id)
	}
	b.mu.Unlock()
	s.close()
}

// errBrokerClosed reported by operations on a closed broker.
var errBrokerClosed = errors.New("mqtt: broker closed")

// InjectPublish routes a message as if a client had published it. The fog
// node uses this to replay its store-and-forward queue into the cloud
// broker after a partition heals.
func (b *Broker) InjectPublish(clientID, topic string, payload []byte, qos byte, retain bool) error {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return errBrokerClosed
	}
	if err := ValidateTopicName(topic); err != nil {
		return err
	}
	if b.cfg.ACL != nil && !b.cfg.ACL(clientID, topic, true) {
		b.cPubDenied.Inc()
		return fmt.Errorf("mqtt: publish to %q denied for %s", topic, clientID)
	}
	pkt := &Packet{Type: PUBLISH, Topic: topic, Payload: payload, QoS: qos, Retain: retain}
	if retain {
		b.mu.Lock()
		if len(payload) == 0 {
			delete(b.retained, topic)
		} else {
			b.retained[topic] = retainedMsg{payload: payload, qos: qos}
		}
		b.mu.Unlock()
	}
	if tap := b.Tap; tap != nil {
		tap(clientID, topic, payload, time.Now())
	}
	b.cPubIn.Inc()
	b.route(pkt)
	return nil
}
