package mqtt

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/shardhash"
)

// AuthFunc authenticates a connecting client and returns an MQTT connect
// return code (ConnAccepted to admit). It is the hook the SWAMP security
// layer plugs into (device API keys, OAuth bearer passwords).
type AuthFunc func(clientID, username, password string) byte

// ACLFunc authorizes one topic operation. write=true means publish,
// write=false means subscribe. Returning false rejects the operation.
type ACLFunc func(clientID, topic string, write bool) bool

// BrokerConfig tunes broker behaviour. The zero value is usable.
type BrokerConfig struct {
	// Auth is consulted on CONNECT; nil admits everyone.
	Auth AuthFunc
	// ACL is consulted on PUBLISH and SUBSCRIBE; nil allows everything.
	ACL ACLFunc
	// RetryInterval is the QoS 1 redelivery interval (default 1s).
	RetryInterval time.Duration
	// MaxRetries bounds QoS 1 redeliveries before the message is dropped
	// (default 5).
	MaxRetries int
	// SessionQueueLen bounds each session's outbound queue in packets
	// (default 256). When a session's queue is full, QoS 0 deliveries drop
	// the oldest queued packet and QoS 1 deliveries are parked for the
	// redelivery pass — either way only that session degrades.
	SessionQueueLen int
	// RetainedShards splits the retained-message store (default 8).
	RetainedShards int
	// CompatSyncDelivery restores the pre-queue fan-out: route() writes
	// synchronously to every subscriber from the publisher's goroutine, so
	// one slow subscriber head-of-line-blocks every publisher. Kept for
	// benchmarking against the per-session queue path.
	CompatSyncDelivery bool
	// Clock drives keepalive, QoS 1 redelivery and Tap timestamps (nil →
	// wall clock). Simulations pass clock.Sim so retransmission is
	// deterministic.
	Clock clock.Clock
	// Metrics receives broker counters; nil allocates a private registry.
	Metrics *metrics.Registry
	// Logf receives diagnostics; nil means log.Printf.
	Logf func(format string, args ...any)
}

// DefaultSessionQueueLen is the per-session outbound queue bound.
const DefaultSessionQueueLen = 256

// DefaultRetainedShards is the retained-store shard count.
const DefaultRetainedShards = 8

// Broker is an MQTT 3.1.1-subset message broker. Construct with NewBroker;
// attach clients with Serve (TCP) and/or AttachTransport (simulated links).
//
// Concurrency: the session map, the subscription trie and the (sharded)
// retained store each sit behind their own lock, so CONNECT storms,
// SUBSCRIBE floods and PUBLISH routing never serialize on one mutex. Fan-out
// is asynchronous: route() snapshots the matching sessions and enqueues onto
// each session's bounded outbound queue; a dedicated writer goroutine per
// session drains it, so a slow or dead subscriber overflows only its own
// queue while every other session keeps streaming.
type Broker struct {
	cfg BrokerConfig
	reg *metrics.Registry
	clk clock.Clock

	sessMu   sync.RWMutex
	sessions map[string]*session
	closed   bool

	subMu sync.RWMutex
	subs  *subTree

	retained []*retainedShard

	wg   sync.WaitGroup
	done chan struct{}

	// Hot-path counters, resolved once: the northbound bridge pushes every
	// sensor reading through publish/deliver, so per-message registry map
	// lookups add up.
	cPubIn, cPubDenied, cDeliverOut, cDeliverErr *metrics.Counter
	cQueueDropped, cQueueParked                  *metrics.Counter
	gQueueDepth                                  *metrics.Gauge

	// Tap, if set, observes every PUBLISH routed by the broker. The anomaly
	// detection layer uses it as its traffic feed. Must be set before
	// clients attach. The callback must not block.
	Tap func(clientID, topic string, payload []byte, at time.Time)
}

type retainedMsg struct {
	payload []byte
	qos     byte
}

// retainedShard is one lock's worth of the retained-message store.
type retainedShard struct {
	mu sync.RWMutex
	m  map[string]retainedMsg
}

// NewBroker constructs a broker ready to accept transports.
func NewBroker(cfg BrokerConfig) *Broker {
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	if cfg.SessionQueueLen <= 0 {
		cfg.SessionQueueLen = DefaultSessionQueueLen
	}
	if cfg.RetainedShards <= 0 {
		cfg.RetainedShards = DefaultRetainedShards
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	shards := make([]*retainedShard, cfg.RetainedShards)
	for i := range shards {
		shards[i] = &retainedShard{m: make(map[string]retainedMsg)}
	}
	return &Broker{
		cfg:      cfg,
		reg:      cfg.Metrics,
		clk:      cfg.Clock,
		sessions: make(map[string]*session),
		subs:     newSubTree(),
		retained: shards,
		done:     make(chan struct{}),

		cPubIn:        cfg.Metrics.Counter("mqtt.publish.in"),
		cPubDenied:    cfg.Metrics.Counter("mqtt.publish.denied"),
		cDeliverOut:   cfg.Metrics.Counter("mqtt.deliver.out"),
		cDeliverErr:   cfg.Metrics.Counter("mqtt.deliver.err"),
		cQueueDropped: cfg.Metrics.Counter("mqtt.queue.dropped"),
		cQueueParked:  cfg.Metrics.Counter("mqtt.queue.parked"),
		gQueueDepth:   cfg.Metrics.Gauge("mqtt.queue.depth"),
	}
}

// Metrics returns the broker's metrics registry.
func (b *Broker) Metrics() *metrics.Registry { return b.reg }

// retainedFor returns the retained shard owning topic.
func (b *Broker) retainedFor(topic string) *retainedShard {
	return b.retained[shardhash.Index(len(b.retained), topic)]
}

// Serve accepts TCP connections on ln until the broker is closed or the
// listener fails. It blocks; run it in a goroutine.
func (b *Broker) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-b.done:
				return nil
			default:
				return fmt.Errorf("mqtt broker: accept: %w", err)
			}
		}
		b.AttachTransport(NewStreamTransport(conn))
	}
}

// AttachTransport hands a connected transport to the broker, which serves
// it on its own goroutine until disconnect.
func (b *Broker) AttachTransport(t Transport) {
	b.sessMu.Lock()
	if b.closed {
		b.sessMu.Unlock()
		t.Close()
		return
	}
	b.wg.Add(1)
	b.sessMu.Unlock()
	go func() {
		defer b.wg.Done()
		b.serveTransport(t)
	}()
}

// Close disconnects every client and waits for connection goroutines.
func (b *Broker) Close() {
	b.sessMu.Lock()
	if b.closed {
		b.sessMu.Unlock()
		return
	}
	b.closed = true
	sessions := make([]*session, 0, len(b.sessions))
	for _, s := range b.sessions {
		sessions = append(sessions, s)
	}
	b.sessMu.Unlock()
	close(b.done)
	for _, s := range sessions {
		s.close()
	}
	b.wg.Wait()
}

// SessionCount returns the number of connected clients.
func (b *Broker) SessionCount() int {
	b.sessMu.RLock()
	defer b.sessMu.RUnlock()
	return len(b.sessions)
}

// RetainedCount returns the number of retained topics.
func (b *Broker) RetainedCount() int {
	n := 0
	for _, sh := range b.retained {
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// session is one connected client.
type session struct {
	id        string
	transport Transport
	broker    *Broker

	mu       sync.Mutex
	pending  map[uint16]*pendingPub
	outq     []*Packet // bounded outbound queue, drained by the writer
	nextID   uint16
	lastSeen time.Time
	keep     time.Duration
	closedFl bool

	notify chan struct{} // cap 1: wakes the writer when outq fills
	done   chan struct{}
}

type pendingPub struct {
	pkt     *Packet
	sentAt  time.Time
	retries int
	// parked marks a QoS 1 publish that never made it onto the outbound
	// queue (overflow). The writer's retry pass sends it as a fresh
	// transmission: no DUP flag, no retry charged.
	parked bool
}

func (s *session) close() {
	s.mu.Lock()
	if s.closedFl {
		s.mu.Unlock()
		return
	}
	s.closedFl = true
	dropped := len(s.outq)
	s.outq = nil
	s.mu.Unlock()
	if dropped > 0 {
		s.broker.gQueueDepth.Add(-float64(dropped))
	}
	close(s.done)
	s.transport.Close()
}

func (s *session) touch() {
	now := s.broker.clk.Now()
	s.mu.Lock()
	s.lastSeen = now
	s.mu.Unlock()
}

func (b *Broker) serveTransport(t Transport) {
	// First packet must be CONNECT.
	first, err := t.ReadPacket()
	if err != nil {
		t.Close()
		return
	}
	if first.Type != CONNECT {
		b.cfg.Logf("mqtt broker: %s: first packet %v, want CONNECT", t.RemoteAddr(), first.Type)
		t.Close()
		return
	}
	if first.ClientID == "" {
		_ = t.WritePacket(&Packet{Type: CONNACK, ReturnCode: ConnRefusedIdentifier})
		t.Close()
		return
	}
	if b.cfg.Auth != nil {
		if code := b.cfg.Auth(first.ClientID, first.Username, first.Password); code != ConnAccepted {
			b.reg.Counter("mqtt.connect.refused").Inc()
			_ = t.WritePacket(&Packet{Type: CONNACK, ReturnCode: code})
			t.Close()
			return
		}
	}

	s := &session{
		id:        first.ClientID,
		transport: t,
		broker:    b,
		pending:   make(map[uint16]*pendingPub),
		lastSeen:  b.clk.Now(),
		keep:      time.Duration(first.KeepAliveSec) * time.Second,
		notify:    make(chan struct{}, 1),
		done:      make(chan struct{}),
	}

	// Session takeover: a reconnect with the same client id displaces the
	// old connection (3.1.1 §3.1.4). Displace + strip subscriptions +
	// install must be atomic under sessMu: publishing the new session
	// before the old one's subscriptions are removed would let a racing
	// route() deliver the old session's topics to the new transport, and a
	// delayed removeAll would strip subscriptions the new client has
	// already re-established. Nesting subMu inside sessMu is safe — no
	// path acquires them in the opposite nesting.
	b.sessMu.Lock()
	if b.closed {
		b.sessMu.Unlock()
		t.Close()
		return
	}
	if old := b.sessions[s.id]; old != nil {
		old.close()
		b.subMu.Lock()
		b.subs.removeAll(s.id)
		b.subMu.Unlock()
	}
	b.sessions[s.id] = s
	b.sessMu.Unlock()

	if err := t.WritePacket(&Packet{Type: CONNACK, ReturnCode: ConnAccepted}); err != nil {
		b.dropSession(s)
		return
	}
	b.reg.Counter("mqtt.connect.accepted").Inc()

	// Dedicated writer: drains the outbound queue and runs QoS 1
	// redelivery. The keepalive watchdog stays a separate goroutine on
	// purpose: a dead TCP peer can wedge the writer inside a blocking
	// WritePacket forever, and only an independent watchdog can then drop
	// the session (transport.Close unblocks the writer).
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.sessionWriter(s)
	}()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.keepaliveWatchdog(s)
	}()

	for {
		pkt, err := t.ReadPacket()
		if err != nil {
			break
		}
		s.touch()
		if stop := b.handlePacket(s, pkt); stop {
			break
		}
	}
	b.dropSession(s)
}

// handlePacket processes one inbound packet; it reports whether the session
// should end.
func (b *Broker) handlePacket(s *session, pkt *Packet) (stop bool) {
	switch pkt.Type {
	case PUBLISH:
		b.handlePublish(s, pkt)
	case PUBACK:
		s.mu.Lock()
		delete(s.pending, pkt.PacketID)
		s.mu.Unlock()
	case SUBSCRIBE:
		b.handleSubscribe(s, pkt)
	case UNSUBSCRIBE:
		b.handleUnsubscribe(s, pkt)
	case PINGREQ:
		_ = s.transport.WritePacket(&Packet{Type: PINGRESP})
	case DISCONNECT:
		return true
	default:
		b.cfg.Logf("mqtt broker: %s sent unexpected %v", s.id, pkt.Type)
		return true
	}
	return false
}

func (b *Broker) handlePublish(s *session, pkt *Packet) {
	if err := ValidateTopicName(pkt.Topic); err != nil {
		b.cfg.Logf("mqtt broker: %s: %v", s.id, err)
		return
	}
	if b.cfg.ACL != nil && !b.cfg.ACL(s.id, pkt.Topic, true) {
		b.cPubDenied.Inc()
		return
	}
	b.cPubIn.Inc()
	if pkt.QoS == 1 {
		_ = s.transport.WritePacket(&Packet{Type: PUBACK, PacketID: pkt.PacketID})
	}
	if pkt.Retain {
		b.storeRetained(pkt.Topic, pkt.Payload, pkt.QoS)
	}
	if tap := b.Tap; tap != nil {
		tap(s.id, pkt.Topic, pkt.Payload, b.clk.Now())
	}
	b.route(pkt)
}

// storeRetained updates the retained store for topic; an empty payload
// clears it (3.1.1 §3.3.1.3).
func (b *Broker) storeRetained(topic string, payload []byte, qos byte) {
	sh := b.retainedFor(topic)
	sh.mu.Lock()
	if len(payload) == 0 {
		delete(sh.m, topic)
	} else {
		sh.m[topic] = retainedMsg{payload: payload, qos: qos}
	}
	sh.mu.Unlock()
}

// route fans a publish out to matching subscribers. It only snapshots and
// enqueues — it never writes to a transport, so a stalled subscriber cannot
// block the publisher's read goroutine.
func (b *Broker) route(pkt *Packet) {
	b.subMu.RLock()
	matches := b.subs.match(pkt.Topic)
	b.subMu.RUnlock()
	if len(matches) == 0 {
		return
	}
	targets := make([]*session, 0, len(matches))
	qoss := make([]byte, 0, len(matches))
	b.sessMu.RLock()
	for id, subQoS := range matches {
		if sess := b.sessions[id]; sess != nil {
			targets = append(targets, sess)
			q := pkt.QoS
			if subQoS < q {
				q = subQoS
			}
			qoss = append(qoss, q)
		}
	}
	b.sessMu.RUnlock()

	for i, sess := range targets {
		b.deliver(sess, pkt.Topic, pkt.Payload, qoss[i], false)
	}
}

// deliver hands one PUBLISH to a subscriber session, tracking it for
// redelivery if QoS 1. On the default path the packet is enqueued for the
// session's writer; with CompatSyncDelivery it is written in place.
func (b *Broker) deliver(s *session, topic string, payload []byte, qos byte, retain bool) {
	out := &Packet{Type: PUBLISH, Topic: topic, Payload: payload, QoS: qos, Retain: retain}
	if b.cfg.CompatSyncDelivery {
		if qos == 1 {
			s.mu.Lock()
			if s.closedFl {
				s.mu.Unlock()
				return
			}
			id := s.allocPacketIDLocked()
			out.PacketID = id
			s.pending[id] = &pendingPub{pkt: out, sentAt: b.clk.Now()}
			s.mu.Unlock()
		}
		if err := s.transport.WritePacket(out); err != nil {
			b.cDeliverErr.Inc()
			return
		}
		b.cDeliverOut.Inc()
		return
	}
	b.enqueue(s, out)
}

// enqueue places a delivery on s's bounded outbound queue. Overflow policy:
// QoS 0 drops the oldest queued packet (fresh field state matters more than
// stale history — the same call the fog queue makes); QoS 1 entries are
// parked in the pending map for the writer's retry pass, which transmits
// them once the queue drains. Either way, only this session degrades.
func (b *Broker) enqueue(s *session, out *Packet) {
	var dropped *Packet
	s.mu.Lock()
	if s.closedFl {
		s.mu.Unlock()
		return
	}
	if out.QoS == 1 {
		// The pending map is the session's inflight window. Cap it at 4×
		// the queue bound: past that the session is not draining at all
		// (wedged transport), and tracking more would grow memory without
		// bound — shed the newest delivery instead.
		if len(s.pending) >= 4*b.cfg.SessionQueueLen {
			s.mu.Unlock()
			b.cQueueDropped.Inc()
			return
		}
		id := s.allocPacketIDLocked()
		out.PacketID = id
		p := &pendingPub{pkt: out, sentAt: b.clk.Now()}
		s.pending[id] = p
		if len(s.outq) >= b.cfg.SessionQueueLen {
			p.parked = true
			s.mu.Unlock()
			b.cQueueParked.Inc()
			return
		}
	} else if len(s.outq) >= b.cfg.SessionQueueLen {
		dropped = s.outq[0]
		s.outq = s.outq[1:]
	}
	s.outq = append(s.outq, out)
	s.mu.Unlock()

	if dropped != nil {
		if dropped.QoS == 1 {
			// A queued QoS 1 packet is already tracked in pending; evicting
			// it from the queue just converts it into a parked entry.
			s.mu.Lock()
			if p := s.pending[dropped.PacketID]; p != nil {
				p.parked = true
			}
			s.mu.Unlock()
			b.cQueueParked.Inc()
		} else {
			b.cQueueDropped.Inc()
		}
	} else {
		b.gQueueDepth.Add(1)
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// sessionWriter is the per-session writer goroutine: it drains the outbound
// queue, redelivers unacknowledged QoS 1 messages and enforces the
// keepalive deadline. Keeping redelivery bookkeeping here means the only
// contention on session.mu is the short enqueue/pop critical section.
func (b *Broker) sessionWriter(s *session) {
	retry := b.clk.After(b.cfg.RetryInterval)
	for {
		select {
		case <-s.done:
			return
		case <-b.done:
			return
		case <-s.notify:
			if !b.drainQueue(s) {
				b.dropSession(s)
				return
			}
		case now := <-retry:
			retry = b.clk.After(b.cfg.RetryInterval)
			// Drain before retrying: retransmitting (or transmitting
			// parked entries) while older deliveries still sit unwritten
			// in the queue would reorder QoS 1 streams and DUP-mark first
			// transmissions.
			if !b.drainQueue(s) || !b.retryPass(s, now) {
				b.dropSession(s)
				return
			}
		}
	}
}

// drainQueue writes everything queued on s, batching pops so the lock is
// held only to swap slices. It reports false on a write error.
func (b *Broker) drainQueue(s *session) bool {
	for {
		s.mu.Lock()
		batch := s.outq
		s.outq = nil
		s.mu.Unlock()
		if len(batch) == 0 {
			return true
		}
		b.gQueueDepth.Add(-float64(len(batch)))
		qos1 := 0
		for _, pkt := range batch {
			if err := s.transport.WritePacket(pkt); err != nil {
				b.cDeliverErr.Inc()
				return false
			}
			if pkt.QoS == 1 {
				qos1++
			}
			b.cDeliverOut.Inc()
		}
		if qos1 > 0 {
			// The unacked clock starts at transmission, not enqueue —
			// otherwise time spent waiting in the queue behind a slow link
			// would be charged as retry/expiry time. One stamp pass per
			// batch keeps s.mu traffic off the per-packet path.
			now := b.clk.Now()
			s.mu.Lock()
			for _, pkt := range batch {
				if pkt.QoS != 1 {
					continue
				}
				if p := s.pending[pkt.PacketID]; p != nil {
					p.sentAt = now
				}
			}
			s.mu.Unlock()
		}
	}
}

// retryPass redelivers due QoS 1 messages (transmitting parked ones for
// the first time) and expires messages past MaxRetries. It reports false
// when the session must be dropped.
func (b *Broker) retryPass(s *session, now time.Time) bool {
	var resend []*Packet
	s.mu.Lock()
	for id, p := range s.pending {
		if p.parked {
			p.parked = false
			p.sentAt = now
			resend = append(resend, p.pkt)
			continue
		}
		if now.Sub(p.sentAt) < b.cfg.RetryInterval {
			continue
		}
		if p.retries >= b.cfg.MaxRetries {
			delete(s.pending, id)
			b.reg.Counter("mqtt.deliver.expired").Inc()
			continue
		}
		p.retries++
		p.sentAt = now
		dup := *p.pkt
		dup.Dup = true
		resend = append(resend, &dup)
	}
	s.mu.Unlock()
	for _, pkt := range resend {
		if err := s.transport.WritePacket(pkt); err != nil {
			b.cDeliverErr.Inc()
			return false
		}
		if pkt.Dup {
			b.reg.Counter("mqtt.deliver.retry").Inc()
		} else {
			b.cDeliverOut.Inc()
		}
	}
	return true
}

// keepaliveWatchdog drops the session once it has been silent past 1.5×
// its keepalive (3.1.1 §3.1.2.10). Independent of the writer goroutine so
// a transport wedged mid-write still gets reaped — dropSession's
// transport.Close is what unblocks the stuck writer.
func (b *Broker) keepaliveWatchdog(s *session) {
	for {
		select {
		case <-s.done:
			return
		case <-b.done:
			return
		case now := <-b.clk.After(b.cfg.RetryInterval):
			s.mu.Lock()
			expired := s.keep > 0 && now.Sub(s.lastSeen) > s.keep*3/2
			s.mu.Unlock()
			if expired {
				b.cfg.Logf("mqtt broker: %s keepalive expired", s.id)
				b.dropSession(s)
				return
			}
		}
	}
}

// allocPacketIDLocked returns the next free packet id; s.mu must be held.
func (s *session) allocPacketIDLocked() uint16 {
	for {
		s.nextID++
		if s.nextID == 0 {
			s.nextID = 1
		}
		if _, used := s.pending[s.nextID]; !used {
			return s.nextID
		}
	}
}

func (b *Broker) handleSubscribe(s *session, pkt *Packet) {
	granted := make([]byte, len(pkt.Filters))
	accepted := make([]Subscription, 0, len(pkt.Filters))
	for i, f := range pkt.Filters {
		qos := f.QoS
		if qos > 1 {
			qos = 1 // downgrade: broker supports QoS 0/1
		}
		if err := ValidateTopicFilter(f.Filter); err != nil {
			granted[i] = 0x80
			continue
		}
		if b.cfg.ACL != nil && !b.cfg.ACL(s.id, f.Filter, false) {
			b.reg.Counter("mqtt.subscribe.denied").Inc()
			granted[i] = 0x80
			continue
		}
		granted[i] = qos
		accepted = append(accepted, Subscription{Filter: f.Filter, QoS: qos})
	}

	b.subMu.Lock()
	for _, f := range accepted {
		b.subs.add(f.Filter, s.id, f.QoS)
	}
	b.subMu.Unlock()

	// Snapshot retained messages matching the new filters.
	type retRef struct {
		topic string
		msg   retainedMsg
		qos   byte
	}
	var rets []retRef
	if len(accepted) > 0 {
		for _, sh := range b.retained {
			sh.mu.RLock()
			for topic, msg := range sh.m {
				for _, f := range accepted {
					if MatchTopic(f.Filter, topic) {
						q := msg.qos
						if f.QoS < q {
							q = f.QoS
						}
						rets = append(rets, retRef{topic: topic, msg: msg, qos: q})
						break
					}
				}
			}
			sh.mu.RUnlock()
		}
	}

	_ = s.transport.WritePacket(&Packet{Type: SUBACK, PacketID: pkt.PacketID, GrantedQoS: granted})
	for _, r := range rets {
		b.deliver(s, r.topic, r.msg.payload, r.qos, true)
	}
	b.reg.Counter("mqtt.subscribe.ok").Add(uint64(len(accepted)))
}

func (b *Broker) handleUnsubscribe(s *session, pkt *Packet) {
	b.subMu.Lock()
	for _, f := range pkt.Filters {
		b.subs.remove(f.Filter, s.id)
	}
	b.subMu.Unlock()
	_ = s.transport.WritePacket(&Packet{Type: UNSUBACK, PacketID: pkt.PacketID})
}

// dropSession removes s from the broker and closes its transport.
func (b *Broker) dropSession(s *session) {
	b.sessMu.Lock()
	owner := b.sessions[s.id] == s
	if owner {
		delete(b.sessions, s.id)
	}
	b.sessMu.Unlock()
	if owner {
		b.subMu.Lock()
		b.subs.removeAll(s.id)
		b.subMu.Unlock()
	}
	s.close()
}

// errBrokerClosed reported by operations on a closed broker.
var errBrokerClosed = errors.New("mqtt: broker closed")

// InjectPublish routes a message as if a client had published it. The fog
// node uses this to replay its store-and-forward queue into the cloud
// broker after a partition heals.
func (b *Broker) InjectPublish(clientID, topic string, payload []byte, qos byte, retain bool) error {
	b.sessMu.RLock()
	closed := b.closed
	b.sessMu.RUnlock()
	if closed {
		return errBrokerClosed
	}
	if err := ValidateTopicName(topic); err != nil {
		return err
	}
	if b.cfg.ACL != nil && !b.cfg.ACL(clientID, topic, true) {
		b.cPubDenied.Inc()
		return fmt.Errorf("mqtt: publish to %q denied for %s", topic, clientID)
	}
	pkt := &Packet{Type: PUBLISH, Topic: topic, Payload: payload, QoS: qos, Retain: retain}
	if retain {
		b.storeRetained(topic, payload, qos)
	}
	if tap := b.Tap; tap != nil {
		tap(clientID, topic, payload, b.clk.Now())
	}
	b.cPubIn.Inc()
	b.route(pkt)
	return nil
}
