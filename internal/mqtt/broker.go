package mqtt

import (
	"errors"
	"fmt"
	"log"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/shardhash"
	"github.com/swamp-project/swamp/internal/tenant"
)

// AuthFunc authenticates a connecting client and returns an MQTT connect
// return code (ConnAccepted to admit). It is the hook the SWAMP security
// layer plugs into (device API keys, OAuth bearer passwords).
type AuthFunc func(clientID, username, password string) byte

// ACLFunc authorizes one topic operation. write=true means publish,
// write=false means subscribe. Returning false rejects the operation.
type ACLFunc func(clientID, topic string, write bool) bool

// BrokerConfig tunes broker behaviour. The zero value is usable.
type BrokerConfig struct {
	// Auth is consulted on CONNECT; nil admits everyone.
	Auth AuthFunc
	// ACL is consulted on PUBLISH and SUBSCRIBE; nil allows everything.
	ACL ACLFunc
	// TenantFunc resolves the connecting client to its tenant, once, at
	// CONNECT time (after Auth accepts). nil, or returning tenant.None,
	// marks the session as internal platform traffic — never admitted
	// against a quota.
	TenantFunc func(clientID, username string) tenant.ID
	// Admission is the shared per-tenant admission controller. nil (or
	// disabled) admits everything; when set, CONNECT, PUBLISH and
	// SUBSCRIBE are charged against the session tenant's quotas.
	Admission *tenant.Admission
	// RetryInterval is the QoS 1 redelivery interval (default 1s).
	RetryInterval time.Duration
	// MaxRetries bounds QoS 1 redeliveries before the message is dropped
	// (default 5).
	MaxRetries int
	// SessionQueueLen bounds each session's outbound queue in packets
	// (default 256). When a session's queue is full, QoS 0 deliveries drop
	// the oldest queued packet and QoS 1 deliveries are parked for the
	// redelivery pass — either way only that session degrades.
	SessionQueueLen int
	// FlushWatermark is the byte threshold at which the session writer
	// flushes a buffering transport mid-batch (default 8KiB, negative
	// flushes after every packet). The writer always flushes once its queue
	// drains empty, so the watermark only bounds latency under sustained
	// backlog.
	FlushWatermark int
	// RouteCacheSize caps the concrete-topic route cache (default 4096
	// topics; negative disables caching). The cache is reset wholesale when
	// it fills, which is fine for the telemetry workload it exists for:
	// a device's topics repeat for its lifetime.
	RouteCacheSize int
	// RetainedShards splits the retained-message store (default 8).
	RetainedShards int
	// CompatSyncDelivery restores the pre-queue fan-out: route() writes
	// synchronously to every subscriber from the publisher's goroutine, so
	// one slow subscriber head-of-line-blocks every publisher. Kept for
	// benchmarking against the per-session queue path.
	CompatSyncDelivery bool
	// Clock drives keepalive, QoS 1 redelivery and Tap timestamps (nil →
	// wall clock). Simulations pass clock.Sim so retransmission is
	// deterministic.
	Clock clock.Clock
	// Metrics receives broker counters; nil allocates a private registry.
	Metrics *metrics.Registry
	// Logf receives diagnostics; nil means log.Printf.
	Logf func(format string, args ...any)
}

// DefaultSessionQueueLen is the per-session outbound queue bound.
const DefaultSessionQueueLen = 256

// DefaultRetainedShards is the retained-store shard count.
const DefaultRetainedShards = 8

// DefaultFlushWatermark is the writer's mid-batch flush threshold in bytes.
const DefaultFlushWatermark = 8 << 10

// DefaultRouteCacheSize bounds the concrete-topic route cache.
const DefaultRouteCacheSize = 4096

// Broker is an MQTT 3.1.1-subset message broker. Construct with NewBroker;
// attach clients with Serve (TCP) and/or AttachTransport (simulated links).
//
// Concurrency: the subscription trie is an immutable copy-on-write structure
// behind an atomic.Pointer — route() reads it lock-free; mutations
// (SUBSCRIBE/UNSUBSCRIBE/disconnect) are serialized by subMu, publish a new
// root, then bump subEpoch. Resolved routes for concrete topics are cached
// and tagged with the epoch captured before the match, so a cached route is
// served only while no mutation has intervened — never stale. Fan-out is
// asynchronous and encode-once: the PUBLISH frame is encoded into a shared
// refcounted buffer and enqueued onto each subscriber's bounded queue; a
// dedicated writer goroutine per session drains the whole queue per wakeup
// into one buffered flush, so a slow or dead subscriber degrades only
// itself and N queued packets cost one syscall instead of N.
type Broker struct {
	cfg BrokerConfig
	reg *metrics.Registry
	clk clock.Clock

	sessMu   sync.RWMutex
	sessions map[string]*session
	closed   bool

	subMu    sync.Mutex // serializes trie mutations; readers never take it
	subs     atomic.Pointer[subTree]
	subEpoch atomic.Uint64

	rcMu       sync.Mutex // serializes route-cache map replacement
	routeCache atomic.Pointer[routeMap]

	// Dynamic knobs, reloadable at runtime via the Set* methods. Sessions
	// snapshot dynQueueLen at attach (a live ring cannot resize safely),
	// so a new bound applies to sessions created after the change; the
	// flush watermark and route-cache cap take effect immediately.
	dynQueueLen  atomic.Int64
	dynFlushMark atomic.Int64
	dynRouteCap  atomic.Int64

	retained []*retainedShard

	wg   sync.WaitGroup
	done chan struct{}

	// Hot-path counters, resolved once: the northbound bridge pushes every
	// sensor reading through publish/deliver, so per-message registry map
	// lookups add up.
	cPubIn, cPubDenied, cDeliverOut, cDeliverErr *metrics.Counter
	cQueueDropped, cQueueParked, cCtlDropped     *metrics.Counter
	cFlushes, cFlushedPkts, cRouteMiss           *metrics.Counter
	cPubSampled, cPubThrottled, cQuotaDisc       *metrics.Counter
	gQueueDepth                                  *metrics.Gauge
	// lastQuotaLog rate-limits the quota-disconnect log line (unix nanos
	// of the last emission).
	lastQuotaLog atomic.Int64

	// Tap, if set, observes every PUBLISH routed by the broker. The anomaly
	// detection layer uses it as its traffic feed. Must be set before
	// clients attach. The callback must not block.
	Tap func(clientID, topic string, payload []byte, at time.Time)
}

// routeMap is the route cache: concrete topic → cached resolution. The map
// itself is copy-on-write (replaced only when a new topic is inserted, under
// rcMu); each entry's resolution swaps independently through an inner
// atomic.Pointer so epoch invalidation rebuilds one route without copying
// the map.
type routeMap map[string]*routeEntry

type routeEntry struct {
	v atomic.Pointer[routeTargets]
}

// routeTargets is one resolved fan-out: the sessions subscribed to a topic
// at the moment epoch was observed.
type routeTargets struct {
	epoch   uint64
	targets []routeTarget
}

type routeTarget struct {
	s   *session
	qos byte // granted subscription QoS
}

type retainedMsg struct {
	payload []byte
	qos     byte
}

// retainedShard is one lock's worth of the retained-message store.
type retainedShard struct {
	mu sync.RWMutex
	m  map[string]retainedMsg
}

// NewBroker constructs a broker ready to accept transports.
func NewBroker(cfg BrokerConfig) *Broker {
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	if cfg.SessionQueueLen <= 0 {
		cfg.SessionQueueLen = DefaultSessionQueueLen
	}
	if cfg.FlushWatermark == 0 {
		cfg.FlushWatermark = DefaultFlushWatermark
	}
	if cfg.RouteCacheSize == 0 {
		cfg.RouteCacheSize = DefaultRouteCacheSize
	}
	if cfg.RetainedShards <= 0 {
		cfg.RetainedShards = DefaultRetainedShards
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	shards := make([]*retainedShard, cfg.RetainedShards)
	for i := range shards {
		shards[i] = &retainedShard{m: make(map[string]retainedMsg)}
	}
	b := &Broker{
		cfg:      cfg,
		reg:      cfg.Metrics,
		clk:      cfg.Clock,
		sessions: make(map[string]*session),
		retained: shards,
		done:     make(chan struct{}),

		cPubIn:        cfg.Metrics.Counter("mqtt.publish.in"),
		cPubDenied:    cfg.Metrics.Counter("mqtt.publish.denied"),
		cDeliverOut:   cfg.Metrics.Counter("mqtt.deliver.out"),
		cDeliverErr:   cfg.Metrics.Counter("mqtt.deliver.err"),
		cQueueDropped: cfg.Metrics.Counter("mqtt.queue.dropped"),
		cQueueParked:  cfg.Metrics.Counter("mqtt.queue.parked"),
		cCtlDropped:   cfg.Metrics.Counter("mqtt.queue.ctl_dropped"),
		cFlushes:      cfg.Metrics.Counter("mqtt.writer.flushes"),
		cFlushedPkts:  cfg.Metrics.Counter("mqtt.writer.flushed_packets"),
		cRouteMiss:    cfg.Metrics.Counter("mqtt.route.cache_miss"),
		cPubSampled:   cfg.Metrics.Counter("mqtt.publish.sampled"),
		cPubThrottled: cfg.Metrics.Counter("mqtt.publish.throttled"),
		cQuotaDisc:    cfg.Metrics.Counter("mqtt.quota.disconnects"),
		gQueueDepth:   cfg.Metrics.Gauge("mqtt.queue.depth"),
	}
	b.subs.Store(newSubTree())
	b.dynQueueLen.Store(int64(cfg.SessionQueueLen))
	b.dynFlushMark.Store(int64(cfg.FlushWatermark))
	b.dynRouteCap.Store(int64(cfg.RouteCacheSize))
	return b
}

// Metrics returns the broker's metrics registry.
func (b *Broker) Metrics() *metrics.Registry { return b.reg }

// SetSessionQueueLen changes the per-session outbound queue bound.
// Existing sessions keep the ring they were attached with; the new bound
// applies to sessions created afterwards. n <= 0 restores the default.
func (b *Broker) SetSessionQueueLen(n int) {
	if n <= 0 {
		n = DefaultSessionQueueLen
	}
	b.dynQueueLen.Store(int64(n))
}

// SetFlushWatermark changes the writer's mid-batch flush threshold in
// bytes, effective on the next drain. Negative flushes per packet; 0
// restores the default.
func (b *Broker) SetFlushWatermark(n int) {
	if n == 0 {
		n = DefaultFlushWatermark
	}
	b.dynFlushMark.Store(int64(n))
}

// SetRouteCacheSize changes the route-cache capacity. Negative disables
// caching and drops the current cache; 0 restores the default. Shrinking
// below the current population takes effect at the next insert (the cache
// resets wholesale at capacity).
func (b *Broker) SetRouteCacheSize(n int) {
	if n == 0 {
		n = DefaultRouteCacheSize
	}
	b.dynRouteCap.Store(int64(n))
	if n < 0 {
		b.rcMu.Lock()
		b.routeCache.Store(nil)
		b.rcMu.Unlock()
	}
}

// retainedFor returns the retained shard owning topic.
func (b *Broker) retainedFor(topic string) *retainedShard {
	return b.retained[shardhash.Index(len(b.retained), topic)]
}

// Serve accepts TCP connections on ln until the broker is closed or the
// listener fails. It blocks; run it in a goroutine.
func (b *Broker) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-b.done:
				return nil
			default:
				return fmt.Errorf("mqtt broker: accept: %w", err)
			}
		}
		b.AttachTransport(NewStreamTransport(conn))
	}
}

// AttachTransport hands a connected transport to the broker, which serves
// it on its own goroutine until disconnect.
func (b *Broker) AttachTransport(t Transport) {
	b.sessMu.Lock()
	if b.closed {
		b.sessMu.Unlock()
		t.Close()
		return
	}
	b.wg.Add(1)
	b.sessMu.Unlock()
	go func() {
		defer b.wg.Done()
		b.serveTransport(t)
	}()
}

// Close disconnects every client and waits for connection goroutines.
func (b *Broker) Close() {
	b.sessMu.Lock()
	if b.closed {
		b.sessMu.Unlock()
		return
	}
	b.closed = true
	sessions := make([]*session, 0, len(b.sessions))
	for _, s := range b.sessions {
		sessions = append(sessions, s)
	}
	b.sessMu.Unlock()
	close(b.done)
	for _, s := range sessions {
		s.close()
	}
	b.wg.Wait()
}

// SessionCount returns the number of connected clients.
func (b *Broker) SessionCount() int {
	b.sessMu.RLock()
	defer b.sessMu.RUnlock()
	return len(b.sessions)
}

// RetainedCount returns the number of retained topics.
func (b *Broker) RetainedCount() int {
	n := 0
	for _, sh := range b.retained {
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// session is one connected client.
type session struct {
	id        string
	transport Transport
	fw        FrameWriter // transport's shared-frame fast path; nil if unsupported
	fl        Flusher     // transport's flush hook; nil if it writes through
	broker    *Broker

	// tenant is resolved once at CONNECT and is immutable afterwards.
	// tenant.None marks internal platform sessions, exempt from admission.
	tenant tenant.ID
	// tenantSubs counts the subscription-quota slots this session holds,
	// so close() can return exactly what was reserved.
	tenantSubs atomic.Int64

	// qcap is the session's outbound queue bound, snapshotted from the
	// broker's dynamic knob at attach: the ring is fixed-capacity once
	// allocated, so a reload applies to sessions created after it.
	qcap int

	mu      sync.Mutex
	pending map[uint16]*pendingPub
	parkedN int // pending entries with parked=true, so the writer can skip scans
	// outq is a fixed-capacity ring of queued deliveries (cap = qcap,
	// allocated on first use) drained by the writer.
	outq            []outMsg
	outHead, outLen int
	ctlq            []*Packet // control acks, drained ahead of outq
	ctlAlt          []*Packet // writer's drained ctl slice, swapped back in
	nextID          uint16
	lastSeen        time.Time
	keep            time.Duration
	closedFl        bool

	wbatch []outMsg // writer-owned drain scratch, reused across wakeups

	notify chan struct{} // cap 1: wakes the writer when work is queued
	done   chan struct{}
}

// outMsg is one queued delivery: either a shared encoded frame (hot path,
// the queue holds its own reference) or a standalone packet (retained
// snapshots, compat paths, transports without WriteFrame).
type outMsg struct {
	f   *Frame
	pkt *Packet
	pid uint16
	qos byte
}

type pendingPub struct {
	f       *Frame // shared frame (holds a reference); nil → pkt
	pkt     *Packet
	pid     uint16
	sentAt  time.Time
	retries int
	// parked marks a QoS 1 publish that never made it onto the outbound
	// queue (overflow). The writer's retry pass sends it as a fresh
	// transmission: no DUP flag, no retry charged.
	parked bool
}

// pushLocked appends to the ring; the caller has checked it is not full.
func (s *session) pushLocked(m outMsg) {
	if s.outq == nil {
		s.outq = make([]outMsg, s.qcap)
	}
	s.outq[(s.outHead+s.outLen)%len(s.outq)] = m
	s.outLen++
}

// popLocked removes and returns the oldest ring entry.
func (s *session) popLocked() outMsg {
	m := s.outq[s.outHead]
	s.outq[s.outHead] = outMsg{}
	s.outHead = (s.outHead + 1) % len(s.outq)
	s.outLen--
	return m
}

func (s *session) close() {
	s.mu.Lock()
	if s.closedFl {
		s.mu.Unlock()
		return
	}
	s.closedFl = true
	dropped := s.outLen
	var frames []*Frame
	for s.outLen > 0 {
		if m := s.popLocked(); m.f != nil {
			frames = append(frames, m.f)
		}
	}
	s.ctlq = nil
	for id, p := range s.pending {
		if p.f != nil {
			frames = append(frames, p.f)
		}
		delete(s.pending, id)
	}
	s.mu.Unlock()
	if dropped > 0 {
		s.broker.gQueueDepth.Add(-float64(dropped))
	}
	for _, f := range frames {
		f.release()
	}
	// Return every subscription-quota slot the session still holds; the
	// Swap makes a takeover + dropSession pair release exactly once.
	for n := s.tenantSubs.Swap(0); n > 0; n-- {
		s.broker.cfg.Admission.ReleaseSubscription(s.tenant)
	}
	close(s.done)
	s.transport.Close()
}

func (s *session) touch() {
	now := s.broker.clk.Now()
	s.mu.Lock()
	s.lastSeen = now
	s.mu.Unlock()
}

func (b *Broker) serveTransport(t Transport) {
	// First packet must be CONNECT.
	first, err := t.ReadPacket()
	if err != nil {
		t.Close()
		return
	}
	if first.Type != CONNECT {
		b.cfg.Logf("mqtt broker: %s: first packet %v, want CONNECT", t.RemoteAddr(), first.Type)
		t.Close()
		return
	}
	if first.ClientID == "" {
		_ = t.WritePacket(&Packet{Type: CONNACK, ReturnCode: ConnRefusedIdentifier})
		t.Close()
		return
	}
	if b.cfg.Auth != nil {
		if code := b.cfg.Auth(first.ClientID, first.Username, first.Password); code != ConnAccepted {
			b.reg.Counter("mqtt.connect.refused").Inc()
			_ = t.WritePacket(&Packet{Type: CONNACK, ReturnCode: code})
			t.Close()
			return
		}
	}
	var tid tenant.ID
	if b.cfg.TenantFunc != nil {
		tid = b.cfg.TenantFunc(first.ClientID, first.Username)
	}
	// The quota gate is the last CONNECT check: a suspended or deeply
	// indebted tenant is refused at the door rather than admitted into a
	// session every publish of which would be shed.
	if !b.cfg.Admission.AdmitConnect(tid) {
		b.reg.Counter("mqtt.connect.quota_refused").Inc()
		_ = t.WritePacket(&Packet{Type: CONNACK, ReturnCode: ConnRefusedQuota})
		t.Close()
		return
	}

	s := &session{
		id:        first.ClientID,
		tenant:    tid,
		transport: t,
		broker:    b,
		qcap:      int(b.dynQueueLen.Load()),
		pending:   make(map[uint16]*pendingPub),
		lastSeen:  b.clk.Now(),
		keep:      time.Duration(first.KeepAliveSec) * time.Second,
		notify:    make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	s.fw, _ = t.(FrameWriter)
	s.fl, _ = t.(Flusher)

	// Session takeover: a reconnect with the same client id displaces the
	// old connection (3.1.1 §3.1.4). Displace + strip subscriptions +
	// install must be atomic under sessMu: publishing the new session
	// before the old one's subscriptions are removed would let a racing
	// route() deliver the old session's topics to the new transport, and a
	// delayed removal would strip subscriptions the new client has
	// already re-established. Nesting subMu inside sessMu is safe — no
	// path acquires them in the opposite nesting.
	b.sessMu.Lock()
	if b.closed {
		b.sessMu.Unlock()
		t.Close()
		return
	}
	if old := b.sessions[s.id]; old != nil {
		old.close()
		b.stripSubscriptions(s.id)
	}
	b.sessions[s.id] = s
	b.sessMu.Unlock()

	// CONNACK is written before the writer goroutine exists, so the
	// single-writer-per-transport rule holds from the first data packet on.
	if err := t.WritePacket(&Packet{Type: CONNACK, ReturnCode: ConnAccepted}); err != nil {
		b.dropSession(s)
		return
	}
	b.reg.Counter("mqtt.connect.accepted").Inc()

	// Dedicated writer: drains the outbound queue and runs QoS 1
	// redelivery. The keepalive watchdog stays a separate goroutine on
	// purpose: a dead TCP peer can wedge the writer inside a blocking
	// WritePacket forever, and only an independent watchdog can then drop
	// the session (transport.Close unblocks the writer).
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.sessionWriter(s)
	}()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.keepaliveWatchdog(s)
	}()

	for {
		pkt, err := t.ReadPacket()
		if err != nil {
			break
		}
		s.touch()
		if stop := b.handlePacket(s, pkt); stop {
			break
		}
	}
	b.dropSession(s)
}

// stripSubscriptions removes every subscription of clientID from the trie,
// bumping the epoch if anything changed. Callers hold whatever outer locks
// they need; subMu only serializes the trie swap itself.
func (b *Broker) stripSubscriptions(clientID string) {
	b.subMu.Lock()
	if nr, changed := b.subs.Load().withoutClient(clientID); changed {
		b.subs.Store(nr)
		b.subEpoch.Add(1)
	}
	b.subMu.Unlock()
}

// handlePacket processes one inbound packet; it reports whether the session
// should end. Control responses (PUBACK/SUBACK/UNSUBACK/PINGRESP) are routed
// through the session's control queue rather than written here: the session
// writer goroutine is the only writer of the transport.
func (b *Broker) handlePacket(s *session, pkt *Packet) (stop bool) {
	switch pkt.Type {
	case PUBLISH:
		return b.handlePublish(s, pkt)
	case PUBACK:
		s.mu.Lock()
		p := s.pending[pkt.PacketID]
		if p != nil {
			delete(s.pending, pkt.PacketID)
			if p.parked {
				s.parkedN--
			}
		}
		s.mu.Unlock()
		if p != nil && p.f != nil {
			p.f.release()
		}
	case SUBSCRIBE:
		b.handleSubscribe(s, pkt)
	case UNSUBSCRIBE:
		b.handleUnsubscribe(s, pkt)
	case PINGREQ:
		b.enqueueCtl(s, &Packet{Type: PINGRESP})
	case DISCONNECT:
		return true
	default:
		b.cfg.Logf("mqtt broker: %s sent unexpected %v", s.id, pkt.Type)
		return true
	}
	return false
}

// handlePublish processes one inbound PUBLISH; it reports whether the
// session should end (the disconnect rung of the tenant shed ladder).
func (b *Broker) handlePublish(s *session, pkt *Packet) (stop bool) {
	if err := ValidateTopicName(pkt.Topic); err != nil {
		b.cfg.Logf("mqtt broker: %s: %v", s.id, err)
		return false
	}
	if b.cfg.ACL != nil && !b.cfg.ACL(s.id, pkt.Topic, true) {
		b.cPubDenied.Inc()
		return false
	}
	// Tenant admission walks the shed ladder before any routing work —
	// a shed message costs the platform nothing but this switch.
	switch d := b.cfg.Admission.Admit(s.tenant, int64(len(pkt.Payload))); d.Action {
	case tenant.ActAllow:
	case tenant.ActSampled:
		// Sampling rung: the reading is shed but QoS 1 is still
		// acknowledged, so constrained devices do not retransmit into the
		// very congestion being shed. The shed is counted, never silent.
		b.cPubSampled.Inc()
		if pkt.QoS == 1 {
			b.enqueueCtl(s, &Packet{Type: PUBACK, PacketID: pkt.PacketID})
		}
		return false
	case tenant.ActRejected:
		// Reject rung: drop without PUBACK. A QoS 1 publisher's
		// redelivery timer is the honest backpressure signal here —
		// nothing was acknowledged, so nothing acked is lost.
		b.cPubThrottled.Inc()
		return false
	case tenant.ActDisconnected:
		// Last rung: the tenant kept hammering through a full reject
		// window, so the session itself goes. The log line is sampled to
		// one per second — a reconnect-hammering tenant must not be able
		// to spam the operator log; mqtt.quota.disconnects counts every
		// occurrence.
		b.cPubThrottled.Inc()
		b.cQuotaDisc.Inc()
		if now := b.clk.Now().UnixNano(); now-b.lastQuotaLog.Load() > int64(time.Second) {
			b.lastQuotaLog.Store(now)
			b.cfg.Logf("mqtt broker: %s (tenant %s): disconnected for sustained quota overrun", s.id, s.tenant)
		}
		return true
	}
	b.cPubIn.Inc()
	if pkt.QoS == 1 {
		b.enqueueCtl(s, &Packet{Type: PUBACK, PacketID: pkt.PacketID})
	}
	if pkt.Retain {
		b.storeRetained(pkt.Topic, pkt.Payload, pkt.QoS)
	}
	if tap := b.Tap; tap != nil {
		tap(s.id, pkt.Topic, pkt.Payload, b.clk.Now())
	}
	b.routePublish(pkt.Topic, pkt.Payload, pkt.QoS)
	return false
}

// storeRetained updates the retained store for topic; an empty payload
// clears it (3.1.1 §3.3.1.3).
func (b *Broker) storeRetained(topic string, payload []byte, qos byte) {
	sh := b.retainedFor(topic)
	sh.mu.Lock()
	if len(payload) == 0 {
		delete(sh.m, topic)
	} else {
		sh.m[topic] = retainedMsg{payload: payload, qos: qos}
	}
	sh.mu.Unlock()
}

// routePublish fans a publish out to matching subscribers. It only matches
// and enqueues — it never writes to a transport, so a stalled subscriber
// cannot block the publisher's read goroutine.
//
// The hot path takes no locks and, at steady state, performs no heap
// allocations: the subscription trie is read through an atomic pointer, the
// resolved route comes from the epoch-validated cache, and the PUBLISH frame
// is encoded once into a pooled refcounted buffer shared by every target.
func (b *Broker) routePublish(topic string, payload []byte, qos byte) {
	if b.cfg.CompatSyncDelivery {
		b.routeCompat(topic, payload, qos)
		return
	}
	// Epoch before match: if a mutation lands between these two loads the
	// entry is tagged with the older epoch and the next publish rebuilds.
	// A cached entry is served only while its tag equals the current epoch,
	// so a stale route can never be served.
	epoch := b.subEpoch.Load()
	var rt *routeTargets
	var re *routeEntry
	if mp := b.routeCache.Load(); mp != nil {
		if e := (*mp)[topic]; e != nil {
			re = e
			if v := e.v.Load(); v != nil && v.epoch == epoch {
				rt = v
			}
		}
	}
	if rt == nil {
		rt = b.buildRoute(topic, epoch, re)
	}
	if len(rt.targets) == 0 {
		return
	}
	// Encode at most twice — QoS 0 and QoS 1 wire layouts differ by the
	// 2-byte PacketID — and share each frame across all its targets.
	var f0, f1 *Frame
	for _, tg := range rt.targets {
		q := qos
		if tg.qos < q {
			q = tg.qos
		}
		if q == 0 {
			if f0 == nil {
				f0 = newPublishFrame(topic, payload, 0, false)
			}
			b.enqueueMsg(tg.s, f0, nil, 0)
		} else {
			if f1 == nil {
				f1 = newPublishFrame(topic, payload, 1, false)
			}
			b.enqueueMsg(tg.s, f1, nil, 1)
		}
	}
	if f0 != nil {
		f0.release()
	}
	if f1 != nil {
		f1.release()
	}
}

// routeCompat is the CompatSyncDelivery fan-out: synchronous per-subscriber
// writes from the publisher's goroutine.
func (b *Broker) routeCompat(topic string, payload []byte, qos byte) {
	matches := b.subs.Load().match(topic)
	if len(matches) == 0 {
		return
	}
	targets := make([]*session, 0, len(matches))
	qoss := make([]byte, 0, len(matches))
	b.sessMu.RLock()
	for id, subQoS := range matches {
		if sess := b.sessions[id]; sess != nil {
			targets = append(targets, sess)
			q := qos
			if subQoS < q {
				q = subQoS
			}
			qoss = append(qoss, q)
		}
	}
	b.sessMu.RUnlock()
	for i, sess := range targets {
		b.deliver(sess, topic, payload, qoss[i], false)
	}
}

// buildRoute resolves topic against the current trie and installs the result
// in the route cache tagged with epoch (which the caller loaded before any
// matching — see routePublish).
func (b *Broker) buildRoute(topic string, epoch uint64, re *routeEntry) *routeTargets {
	sc := matchScratchPool.Get().(*matchScratch)
	ms, nodes := b.subs.Load().matchInto(topic, sc.buf[:0])
	if nodes > 1 {
		ms = dedupMatches(ms)
	}
	rt := &routeTargets{epoch: epoch}
	if len(ms) > 0 {
		rt.targets = make([]routeTarget, 0, len(ms))
		b.sessMu.RLock()
		for _, m := range ms {
			if sess := b.sessions[m.id]; sess != nil {
				rt.targets = append(rt.targets, routeTarget{s: sess, qos: m.qos})
			}
		}
		b.sessMu.RUnlock()
	}
	sc.buf = ms[:0]
	matchScratchPool.Put(sc)
	b.cRouteMiss.Inc()
	b.storeRoute(topic, re, rt)
	return rt
}

// storeRoute publishes a freshly built route. When the topic already has an
// entry only the inner pointer swaps; inserting a new topic copies the map
// (rare: once per topic, amortized over the device's lifetime). At capacity
// the cache is reset wholesale rather than evicting piecemeal.
func (b *Broker) storeRoute(topic string, re *routeEntry, rt *routeTargets) {
	rcap := int(b.dynRouteCap.Load())
	if rcap < 0 {
		return
	}
	if re != nil {
		re.v.Store(rt)
		return
	}
	b.rcMu.Lock()
	mp := b.routeCache.Load()
	if mp != nil {
		if e := (*mp)[topic]; e != nil {
			// Another publisher inserted the topic while we built.
			e.v.Store(rt)
			b.rcMu.Unlock()
			return
		}
	}
	var nm routeMap
	switch {
	case mp == nil || len(*mp) >= rcap:
		nm = make(routeMap, 64)
	default:
		nm = make(routeMap, len(*mp)+1)
		for k, v := range *mp {
			nm[k] = v
		}
	}
	e := &routeEntry{}
	e.v.Store(rt)
	nm[topic] = e
	b.routeCache.Store(&nm)
	b.rcMu.Unlock()
}

// deliver hands one PUBLISH to a subscriber session as a standalone packet
// (retained snapshots and the compat path; routed fan-out uses shared
// frames). On the default path the packet is enqueued for the session's
// writer; with CompatSyncDelivery it is written in place.
func (b *Broker) deliver(s *session, topic string, payload []byte, qos byte, retain bool) {
	out := &Packet{Type: PUBLISH, Topic: topic, Payload: payload, QoS: qos, Retain: retain}
	if b.cfg.CompatSyncDelivery {
		if qos == 1 {
			s.mu.Lock()
			if s.closedFl {
				s.mu.Unlock()
				return
			}
			id := s.allocPacketIDLocked()
			out.PacketID = id
			s.pending[id] = &pendingPub{pkt: out, pid: id, sentAt: b.clk.Now()}
			s.mu.Unlock()
		}
		if err := s.transport.WritePacket(out); err != nil {
			b.cDeliverErr.Inc()
			return
		}
		b.cDeliverOut.Inc()
		return
	}
	b.enqueueMsg(s, nil, out, qos)
}

// enqueueMsg places a delivery (shared frame f or standalone pkt) on s's
// bounded outbound queue. Overflow policy: QoS 0 drops the oldest queued
// packet (fresh field state matters more than stale history — the same call
// the fog queue makes); QoS 1 entries are parked in the pending map for the
// writer's retry pass, which transmits them once the queue drains. Either
// way, only this session degrades.
func (b *Broker) enqueueMsg(s *session, f *Frame, pkt *Packet, qos byte) {
	var evicted outMsg
	hasEvicted := false
	s.mu.Lock()
	if s.closedFl {
		s.mu.Unlock()
		return
	}
	var pid uint16
	var victimF *Frame
	if qos == 1 {
		// The pending map is the session's inflight window. Cap it at 4×
		// the queue bound so a sick session cannot grow memory without
		// bound. At the cap, prefer evicting the oldest entry that was
		// already transmitted once — its ack is probably in flight, so
		// losing its retransmission tracking costs less than shedding a
		// delivery that never went out (on a loss-free link it costs
		// nothing). Only when nothing has been transmitted (everything
		// parked behind a full ring) is the new delivery shed.
		if len(s.pending) >= 4*s.qcap {
			var victim *pendingPub
			for _, p := range s.pending {
				if p.parked {
					continue
				}
				if victim == nil || p.sentAt.Before(victim.sentAt) {
					victim = p
				}
			}
			if victim == nil {
				s.mu.Unlock()
				b.cQueueDropped.Inc()
				// Everything inflight is parked: the writer is behind, and on
				// a single-P runtime a hot publish pipeline's channel handoffs
				// can keep a runnable writer off the CPU indefinitely. Yield
				// so it can drain before the next publish sheds too.
				runtime.Gosched()
				return
			}
			delete(s.pending, victim.pid)
			victimF = victim.f
			b.cQueueDropped.Inc()
		}
		pid = s.allocPacketIDLocked()
		p := &pendingPub{pid: pid, sentAt: b.clk.Now()}
		if f != nil {
			f.ref()
			p.f = f
		} else {
			pkt.PacketID = pid
			p.pkt = pkt
		}
		s.pending[pid] = p
		if s.outLen == s.qcap {
			p.parked = true
			s.parkedN++
			s.mu.Unlock()
			if victimF != nil {
				victimF.release()
			}
			b.cQueueParked.Inc()
			// Parking means the ring is full with the writer behind; give it
			// a scheduling slot (see the shed path above).
			runtime.Gosched()
			return
		}
	} else if s.outLen == s.qcap {
		evicted = s.popLocked()
		hasEvicted = true
	}
	if f != nil {
		f.ref()
	}
	s.pushLocked(outMsg{f: f, pkt: pkt, pid: pid, qos: qos})
	s.mu.Unlock()

	if victimF != nil {
		victimF.release()
	}
	if hasEvicted {
		if evicted.qos == 1 {
			// A queued QoS 1 packet is already tracked in pending; evicting
			// it from the queue just converts it into a parked entry. The
			// pending entry keeps its own frame reference.
			s.mu.Lock()
			if p := s.pending[evicted.pid]; p != nil && !p.parked {
				p.parked = true
				s.parkedN++
			}
			s.mu.Unlock()
			b.cQueueParked.Inc()
		} else {
			b.cQueueDropped.Inc()
		}
		if evicted.f != nil {
			evicted.f.release()
		}
	} else {
		b.gQueueDepth.Add(1)
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// enqueueCtl queues a control response (PUBACK, SUBACK, UNSUBACK, PINGRESP)
// for the session writer, which drains control packets ahead of data. This
// keeps exactly one goroutine writing each transport; the compat path keeps
// the legacy in-place write. The control queue is bounded: a client flooding
// requests into a wedged transport loses acks, which QoS 1 retransmission
// and client-side timeouts already absorb.
func (b *Broker) enqueueCtl(s *session, pkt *Packet) {
	if b.cfg.CompatSyncDelivery {
		_ = s.transport.WritePacket(pkt)
		return
	}
	s.mu.Lock()
	if s.closedFl || len(s.ctlq) >= s.qcap {
		dropped := !s.closedFl
		s.mu.Unlock()
		if dropped {
			b.cCtlDropped.Inc()
		}
		return
	}
	s.ctlq = append(s.ctlq, pkt)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// sessionWriter is the per-session writer goroutine: it drains the outbound
// queue, redelivers unacknowledged QoS 1 messages and enforces the
// keepalive deadline. Keeping redelivery bookkeeping here means the only
// contention on session.mu is the short enqueue/pop critical section.
func (b *Broker) sessionWriter(s *session) {
	retry := b.clk.After(b.cfg.RetryInterval)
	for {
		select {
		case <-s.done:
			return
		case <-b.done:
			return
		case <-s.notify:
			// Drain, then immediately transmit anything the overflow parked:
			// by the time the ring is empty the parked entries are the oldest
			// undelivered messages this session has.
			if !b.drainQueue(s) || !b.unparkPass(s) {
				b.dropSession(s)
				return
			}
		case now := <-retry:
			retry = b.clk.After(b.cfg.RetryInterval)
			// Drain before retrying: retransmitting (or transmitting
			// parked entries) while older deliveries still sit unwritten
			// in the queue would reorder QoS 1 streams and DUP-mark first
			// transmissions.
			if !b.drainQueue(s) || !b.retryPass(s, now) {
				b.dropSession(s)
				return
			}
		}
	}
}

// writeData writes one queued delivery through the transport's fastest
// available path.
func (s *session) writeData(m outMsg) (wire int, err error) {
	if m.f != nil {
		if s.fw != nil {
			return m.f.wireLen(), s.fw.WriteFrame(m.f, m.pid, false)
		}
		return m.f.wireLen(), s.transport.WritePacket(m.f.packet(m.pid, false))
	}
	return len(m.pkt.Payload) + len(m.pkt.Topic) + 4, s.transport.WritePacket(m.pkt)
}

// releaseBatch releases the frame references of batch[from:] and zeroes the
// entries (error-path cleanup; the happy path releases as it stamps).
func releaseBatch(batch []outMsg, from int) {
	for i := from; i < len(batch); i++ {
		if batch[i].f != nil {
			batch[i].f.release()
		}
		batch[i] = outMsg{}
	}
}

// drainQueue writes everything queued on s — control packets first, then the
// data ring — batching pops so the lock is held only to swap slices, and
// coalescing the whole drain into buffered writes flushed at queue-empty or
// the byte watermark. It reports false on a write error.
func (b *Broker) drainQueue(s *session) bool {
	unflushed := 0 // packets written since the last flush
	bytes := 0
	watermark := int(b.dynFlushMark.Load()) // one knob read per drain
	for {
		s.mu.Lock()
		ctl := s.ctlq
		if len(ctl) > 0 {
			// Swap the drained slice for the previously drained one: the
			// reader appends only to s.ctlq under the lock, and drains are
			// sequential in this goroutine, so ctlAlt is free for reuse.
			s.ctlq = s.ctlAlt[:0]
			s.ctlAlt = ctl
		}
		n := s.outLen
		batch := s.wbatch[:0]
		for i := 0; i < n; i++ {
			batch = append(batch, s.popLocked())
		}
		s.wbatch = batch
		s.mu.Unlock()
		if len(ctl) == 0 && len(batch) == 0 {
			break
		}
		if n > 0 {
			b.gQueueDepth.Add(-float64(n))
		}
		for i, pkt := range ctl {
			ctl[i] = nil
			if err := s.transport.WritePacket(pkt); err != nil {
				releaseBatch(batch, 0)
				return false
			}
			unflushed++
		}
		qos1 := 0
		for i, m := range batch {
			wire, err := s.writeData(m)
			if err != nil {
				b.cDeliverErr.Inc()
				releaseBatch(batch, i)
				return false
			}
			b.cDeliverOut.Inc()
			unflushed++
			bytes += wire
			if m.qos == 1 {
				qos1++
			}
			if s.fl != nil && bytes >= watermark {
				if err := s.fl.Flush(); err != nil {
					b.cDeliverErr.Inc()
					releaseBatch(batch, i+1)
					return false
				}
				b.cFlushes.Inc()
				b.cFlushedPkts.Add(uint64(unflushed))
				unflushed, bytes = 0, 0
			}
		}
		if qos1 > 0 {
			// The unacked clock starts at transmission, not enqueue —
			// otherwise time spent waiting in the queue behind a slow link
			// would be charged as retry/expiry time. One stamp pass per
			// batch keeps s.mu traffic off the per-packet path.
			now := b.clk.Now()
			s.mu.Lock()
			for _, m := range batch {
				if m.qos != 1 {
					continue
				}
				if p := s.pending[m.pid]; p != nil {
					p.sentAt = now
				}
			}
			s.mu.Unlock()
		}
		releaseBatch(batch, 0)
	}
	// Queue drained empty: flush whatever the watermark left buffered so
	// tail latency is bounded by one wakeup, not by future traffic.
	if unflushed > 0 {
		if s.fl != nil {
			if err := s.fl.Flush(); err != nil {
				b.cDeliverErr.Inc()
				return false
			}
		}
		b.cFlushes.Inc()
		b.cFlushedPkts.Add(uint64(unflushed))
	}
	return true
}

// resendItem is one retry-pass transmission collected under the lock.
type resendItem struct {
	f   *Frame // holds a reference taken under the lock
	pkt *Packet
	pid uint16
	dup bool
}

// retryPass redelivers due QoS 1 messages (transmitting parked ones for
// the first time) and expires messages past MaxRetries. It reports false
// when the session must be dropped.
func (b *Broker) retryPass(s *session, now time.Time) bool {
	var resend []resendItem
	var expired []*Frame
	s.mu.Lock()
	for id, p := range s.pending {
		if p.parked {
			p.parked = false
			s.parkedN--
			p.sentAt = now
			if p.f != nil {
				p.f.ref()
			}
			resend = append(resend, resendItem{f: p.f, pkt: p.pkt, pid: p.pid})
			continue
		}
		if now.Sub(p.sentAt) < b.cfg.RetryInterval {
			continue
		}
		if p.retries >= b.cfg.MaxRetries {
			delete(s.pending, id)
			if p.f != nil {
				expired = append(expired, p.f)
			}
			b.reg.Counter("mqtt.deliver.expired").Inc()
			continue
		}
		p.retries++
		p.sentAt = now
		if p.f != nil {
			p.f.ref()
			resend = append(resend, resendItem{f: p.f, pid: p.pid, dup: true})
		} else {
			dup := *p.pkt
			dup.Dup = true
			resend = append(resend, resendItem{pkt: &dup, pid: p.pid, dup: true})
		}
	}
	s.mu.Unlock()
	for _, f := range expired {
		f.release()
	}
	return b.writeResend(s, resend)
}

// unparkPass transmits parked QoS 1 deliveries as soon as the queue whose
// overflow parked them has drained, instead of leaving them to the next
// retry tick — parking bounds memory, it should not add a full retry
// interval of latency. Parked entries are older than anything currently
// queued, so sending them straight after a drain preserves rough FIFO
// order. It reports false when the session must be dropped.
func (b *Broker) unparkPass(s *session) bool {
	s.mu.Lock()
	if s.parkedN == 0 || s.outLen > 0 {
		// Nothing parked, or the ring refilled while we drained: those
		// entries are older than any parked one now, and the enqueue that
		// refilled it left a notify token, so another drain+unpark cycle
		// is already scheduled.
		s.mu.Unlock()
		return true
	}
	now := b.clk.Now()
	resend := make([]resendItem, 0, s.parkedN)
	for _, p := range s.pending {
		if !p.parked {
			continue
		}
		p.parked = false
		s.parkedN--
		p.sentAt = now
		if p.f != nil {
			p.f.ref()
		}
		resend = append(resend, resendItem{f: p.f, pkt: p.pkt, pid: p.pid})
	}
	s.mu.Unlock()
	return b.writeResend(s, resend)
}

// writeResend transmits one retry/unpark batch, releasing the frame
// references the collector took under the lock, and flushes once at the
// end. It reports false on a write error.
func (b *Broker) writeResend(s *session, resend []resendItem) bool {
	for i, r := range resend {
		var err error
		switch {
		case r.f != nil && s.fw != nil:
			err = s.fw.WriteFrame(r.f, r.pid, r.dup)
		case r.f != nil:
			err = s.transport.WritePacket(r.f.packet(r.pid, r.dup))
		default:
			err = s.transport.WritePacket(r.pkt)
		}
		if r.f != nil {
			r.f.release()
		}
		if err != nil {
			b.cDeliverErr.Inc()
			for _, rest := range resend[i+1:] {
				if rest.f != nil {
					rest.f.release()
				}
			}
			return false
		}
		if r.dup {
			b.reg.Counter("mqtt.deliver.retry").Inc()
		} else {
			b.cDeliverOut.Inc()
		}
	}
	if len(resend) > 0 {
		if s.fl != nil {
			if err := s.fl.Flush(); err != nil {
				b.cDeliverErr.Inc()
				return false
			}
		}
		b.cFlushes.Inc()
		b.cFlushedPkts.Add(uint64(len(resend)))
	}
	return true
}

// keepaliveWatchdog drops the session once it has been silent past 1.5×
// its keepalive (3.1.1 §3.1.2.10). Independent of the writer goroutine so
// a transport wedged mid-write still gets reaped — dropSession's
// transport.Close is what unblocks the stuck writer.
func (b *Broker) keepaliveWatchdog(s *session) {
	for {
		select {
		case <-s.done:
			return
		case <-b.done:
			return
		case now := <-b.clk.After(b.cfg.RetryInterval):
			s.mu.Lock()
			expired := s.keep > 0 && now.Sub(s.lastSeen) > s.keep*3/2
			s.mu.Unlock()
			if expired {
				b.cfg.Logf("mqtt broker: %s keepalive expired", s.id)
				b.dropSession(s)
				return
			}
		}
	}
}

// allocPacketIDLocked returns the next free packet id; s.mu must be held.
func (s *session) allocPacketIDLocked() uint16 {
	for {
		s.nextID++
		if s.nextID == 0 {
			s.nextID = 1
		}
		if _, used := s.pending[s.nextID]; !used {
			return s.nextID
		}
	}
}

func (b *Broker) handleSubscribe(s *session, pkt *Packet) {
	granted := make([]byte, len(pkt.Filters))
	accepted := make([]Subscription, 0, len(pkt.Filters))
	for i, f := range pkt.Filters {
		qos := f.QoS
		if qos > 1 {
			qos = 1 // downgrade: broker supports QoS 0/1
		}
		if err := ValidateTopicFilter(f.Filter); err != nil {
			granted[i] = 0x80
			continue
		}
		if b.cfg.ACL != nil && !b.cfg.ACL(s.id, f.Filter, false) {
			b.reg.Counter("mqtt.subscribe.denied").Inc()
			granted[i] = 0x80
			continue
		}
		// Each accepted filter holds one of the tenant's subscription
		// slots until the session releases it (UNSUBSCRIBE or close). A
		// duplicate SUBSCRIBE to the same filter double-reserves until
		// close — a bounded over-count on a misbehaving client, never a
		// leak.
		if err := b.cfg.Admission.ReserveSubscription(s.tenant); err != nil {
			b.reg.Counter("mqtt.subscribe.quota_refused").Inc()
			granted[i] = 0x80
			continue
		}
		s.tenantSubs.Add(1)
		granted[i] = qos
		accepted = append(accepted, Subscription{Filter: f.Filter, QoS: qos})
	}

	if len(accepted) > 0 {
		b.subMu.Lock()
		root := b.subs.Load()
		for _, f := range accepted {
			root = root.withSub(f.Filter, s.id, f.QoS)
		}
		// Store the new root before bumping: a reader that observes the new
		// epoch must also observe the new tree, or a cache entry could be
		// tagged fresh while built from the old tree.
		b.subs.Store(root)
		b.subEpoch.Add(1)
		b.subMu.Unlock()
	}

	// Snapshot retained messages matching the new filters.
	type retRef struct {
		topic string
		msg   retainedMsg
		qos   byte
	}
	var rets []retRef
	if len(accepted) > 0 {
		for _, sh := range b.retained {
			sh.mu.RLock()
			for topic, msg := range sh.m {
				for _, f := range accepted {
					if MatchTopic(f.Filter, topic) {
						q := msg.qos
						if f.QoS < q {
							q = f.QoS
						}
						rets = append(rets, retRef{topic: topic, msg: msg, qos: q})
						break
					}
				}
			}
			sh.mu.RUnlock()
		}
	}

	// SUBACK rides the control queue, retained snapshots the data queue;
	// the writer drains control first, so within any drain cycle the SUBACK
	// precedes the retained deliveries it acknowledges.
	b.enqueueCtl(s, &Packet{Type: SUBACK, PacketID: pkt.PacketID, GrantedQoS: granted})
	for _, r := range rets {
		b.deliver(s, r.topic, r.msg.payload, r.qos, true)
	}
	b.reg.Counter("mqtt.subscribe.ok").Add(uint64(len(accepted)))
}

func (b *Broker) handleUnsubscribe(s *session, pkt *Packet) {
	b.subMu.Lock()
	root := b.subs.Load()
	changed := false
	for _, f := range pkt.Filters {
		var removed bool
		root, removed = root.withoutSub(f.Filter, s.id)
		if removed && s.tenantSubs.Load() > 0 {
			s.tenantSubs.Add(-1)
			b.cfg.Admission.ReleaseSubscription(s.tenant)
		}
		changed = changed || removed
	}
	if changed {
		b.subs.Store(root)
		b.subEpoch.Add(1)
	}
	b.subMu.Unlock()
	b.enqueueCtl(s, &Packet{Type: UNSUBACK, PacketID: pkt.PacketID})
}

// dropSession removes s from the broker and closes its transport.
func (b *Broker) dropSession(s *session) {
	b.sessMu.Lock()
	owner := b.sessions[s.id] == s
	if owner {
		delete(b.sessions, s.id)
	}
	b.sessMu.Unlock()
	if owner {
		b.stripSubscriptions(s.id)
	}
	s.close()
}

// errBrokerClosed reported by operations on a closed broker.
var errBrokerClosed = errors.New("mqtt: broker closed")

// InjectPublish routes a message as if a client had published it. The fog
// node uses this to replay its store-and-forward queue into the cloud
// broker after a partition heals.
func (b *Broker) InjectPublish(clientID, topic string, payload []byte, qos byte, retain bool) error {
	b.sessMu.RLock()
	closed := b.closed
	b.sessMu.RUnlock()
	if closed {
		return errBrokerClosed
	}
	if err := ValidateTopicName(topic); err != nil {
		return err
	}
	if b.cfg.ACL != nil && !b.cfg.ACL(clientID, topic, true) {
		b.cPubDenied.Inc()
		return fmt.Errorf("mqtt: publish to %q denied for %s", topic, clientID)
	}
	if retain {
		b.storeRetained(topic, payload, qos)
	}
	if tap := b.Tap; tap != nil {
		tap(clientID, topic, payload, b.clk.Now())
	}
	b.cPubIn.Inc()
	b.routePublish(topic, payload, qos)
	return nil
}
