package mqtt

import (
	"fmt"
	"strings"
	"sync"
)

// ValidateTopicName checks a concrete topic (no wildcards) used in PUBLISH.
func ValidateTopicName(topic string) error {
	if topic == "" {
		return fmt.Errorf("mqtt: empty topic")
	}
	if strings.ContainsAny(topic, "+#") {
		return fmt.Errorf("mqtt: wildcard in topic name %q", topic)
	}
	if strings.ContainsRune(topic, 0) {
		return fmt.Errorf("mqtt: NUL in topic name")
	}
	return nil
}

// ValidateTopicFilter checks a subscription filter, allowing '+' and a
// trailing '#' per the 3.1.1 rules.
func ValidateTopicFilter(filter string) error {
	if filter == "" {
		return fmt.Errorf("mqtt: empty topic filter")
	}
	if strings.ContainsRune(filter, 0) {
		return fmt.Errorf("mqtt: NUL in topic filter")
	}
	levels := strings.Split(filter, "/")
	for i, lv := range levels {
		switch {
		case lv == "#":
			if i != len(levels)-1 {
				return fmt.Errorf("mqtt: '#' not at end of filter %q", filter)
			}
		case lv == "+":
			// single-level wildcard is fine anywhere
		case strings.ContainsAny(lv, "+#"):
			return fmt.Errorf("mqtt: wildcard mixed into level %q of filter %q", lv, filter)
		}
	}
	return nil
}

// MatchTopic reports whether the concrete topic matches the filter under
// MQTT 3.1.1 wildcard semantics. Topics beginning with '$' are not matched
// by wildcard-leading filters (the $SYS rule).
func MatchTopic(filter, topic string) bool {
	if filter == topic {
		return true
	}
	fl := strings.Split(filter, "/")
	tl := strings.Split(topic, "/")
	// $-prefixed topics must not match filters starting with a wildcard.
	if len(tl) > 0 && strings.HasPrefix(tl[0], "$") && (fl[0] == "+" || fl[0] == "#") {
		return false
	}
	for i, f := range fl {
		if f == "#" {
			return true
		}
		if i >= len(tl) {
			return false
		}
		if f != "+" && f != tl[i] {
			return false
		}
	}
	return len(fl) == len(tl)
}

// subTree is an immutable trie over topic levels used by the broker to find
// matching subscribers without taking a lock. Published trees are never
// mutated: the with*/without* constructors clone only the nodes along the
// touched path and share every other subtree, so the broker can swap whole
// trees through an atomic.Pointer while route() keeps reading the old one.
type subTree struct {
	children map[string]*subTree
	subs     map[string]byte // client id -> granted QoS
}

func newSubTree() *subTree { return &subTree{} }

func cloneSubs(src map[string]byte) map[string]byte {
	dst := make(map[string]byte, len(src)+1)
	for id, q := range src {
		dst[id] = q
	}
	return dst
}

func cloneChildren(src map[string]*subTree) map[string]*subTree {
	dst := make(map[string]*subTree, len(src)+1)
	for lv, c := range src {
		dst[lv] = c
	}
	return dst
}

// withSub returns a tree in which clientID is subscribed to filter at qos
// (replacing any previous QoS). The receiver is not modified.
func (t *subTree) withSub(filter, clientID string, qos byte) *subTree {
	return t.cowAdd(strings.Split(filter, "/"), clientID, qos)
}

func (t *subTree) cowAdd(levels []string, id string, qos byte) *subTree {
	if len(levels) == 0 {
		ns := cloneSubs(t.subs)
		ns[id] = qos
		return &subTree{children: t.children, subs: ns}
	}
	child := t.children[levels[0]]
	if child == nil {
		child = newSubTree()
	}
	nc := cloneChildren(t.children)
	nc[levels[0]] = child.cowAdd(levels[1:], id, qos)
	return &subTree{children: nc, subs: t.subs}
}

// withoutSub returns a tree in which clientID's subscription under filter is
// removed, and reports whether a subscription was actually removed. Emptied
// branches are pruned. The receiver is not modified.
func (t *subTree) withoutSub(filter, clientID string) (*subTree, bool) {
	nt, removed := t.cowRemove(strings.Split(filter, "/"), clientID)
	if nt == nil {
		nt = newSubTree()
	}
	return nt, removed
}

// cowRemove returns nil for a node that became empty (pruned by the caller).
func (t *subTree) cowRemove(levels []string, id string) (*subTree, bool) {
	if len(levels) == 0 {
		if _, ok := t.subs[id]; !ok {
			return t, false
		}
		ns := cloneSubs(t.subs)
		delete(ns, id)
		if len(ns) == 0 && len(t.children) == 0 {
			return nil, true
		}
		return &subTree{children: t.children, subs: ns}, true
	}
	child := t.children[levels[0]]
	if child == nil {
		return t, false
	}
	nchild, removed := child.cowRemove(levels[1:], id)
	if !removed {
		return t, false
	}
	nc := cloneChildren(t.children)
	if nchild == nil {
		delete(nc, levels[0])
	} else {
		nc[levels[0]] = nchild
	}
	if len(nc) == 0 && len(t.subs) == 0 {
		return nil, true
	}
	return &subTree{children: nc, subs: t.subs}, true
}

// withoutClient returns a tree with every subscription of clientID removed
// anywhere in it, and reports whether anything was removed. The receiver is
// not modified.
func (t *subTree) withoutClient(clientID string) (*subTree, bool) {
	nt, changed := t.cowRemoveClient(clientID)
	if nt == nil {
		nt = newSubTree()
	}
	return nt, changed
}

func (t *subTree) cowRemoveClient(id string) (*subTree, bool) {
	subs := t.subs
	changed := false
	if _, ok := subs[id]; ok {
		subs = cloneSubs(t.subs)
		delete(subs, id)
		changed = true
	}
	children := t.children
	childrenCloned := false
	for lv, child := range t.children {
		nchild, chChanged := child.cowRemoveClient(id)
		if !chChanged {
			continue
		}
		if !childrenCloned {
			children = cloneChildren(t.children)
			childrenCloned = true
		}
		changed = true
		if nchild == nil {
			delete(children, lv)
		} else {
			children[lv] = nchild
		}
	}
	if !changed {
		return t, false
	}
	if len(subs) == 0 && len(children) == 0 {
		return nil, true
	}
	return &subTree{children: children, subs: subs}, true
}

// subMatch is one matched subscription: a client id and its granted QoS.
type subMatch struct {
	id  string
	qos byte
}

// matchScratch is a pooled buffer for matchInto results, so the steady-state
// match path allocates nothing.
type matchScratch struct {
	buf []subMatch
}

var matchScratchPool = sync.Pool{New: func() any { return new(matchScratch) }}

// matchInto appends every (clientID, qos) subscription matching topic to out
// and returns it, plus the number of trie nodes that contributed matches.
// A client subscribed via several overlapping filters appears once per
// matching filter; callers that need one entry per client at the highest
// QoS dedup with dedupMatches when more than one node contributed (a single
// node's subscriber map already holds unique client ids).
//
// The walk is index-based: topic levels are taken as substrings of the
// original string, so matching splits no strings and allocates nothing
// beyond out's growth.
func (t *subTree) matchInto(topic string, out []subMatch) ([]subMatch, int) {
	nodes := 0
	dollar := len(topic) > 0 && topic[0] == '$'
	out = t.walk(topic, true, dollar, out, &nodes)
	return out, nodes
}

func (t *subTree) walk(rest string, first, dollar bool, out []subMatch, nodes *int) []subMatch {
	level := rest
	next := ""
	more := false
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		level, next, more = rest[:i], rest[i+1:], true
	}
	if child := t.children[level]; child != nil {
		if more {
			out = child.walk(next, false, dollar, out, nodes)
		} else {
			out = child.terminal(out, nodes)
		}
	}
	// Wildcards never match the first level of $-topics.
	if dollar && first {
		return out
	}
	if child := t.children["+"]; child != nil {
		if more {
			out = child.walk(next, false, dollar, out, nodes)
		} else {
			out = child.terminal(out, nodes)
		}
	}
	if child := t.children["#"]; child != nil {
		out = child.appendSubs(out, nodes)
	}
	return out
}

// terminal collects a node reached by the topic's last level: its own
// subscribers plus a '#' child ("sport/#" matches "sport" too).
func (t *subTree) terminal(out []subMatch, nodes *int) []subMatch {
	out = t.appendSubs(out, nodes)
	if h := t.children["#"]; h != nil {
		out = h.appendSubs(out, nodes)
	}
	return out
}

func (t *subTree) appendSubs(out []subMatch, nodes *int) []subMatch {
	if len(t.subs) == 0 {
		return out
	}
	*nodes++
	for id, q := range t.subs {
		out = append(out, subMatch{id: id, qos: q})
	}
	return out
}

// dedupMatches collapses duplicate client ids in ms, keeping the highest
// QoS, and returns the shortened slice. Order is not preserved for
// duplicates. Quadratic in the unique-client count, which only matters on
// the rare multi-node (overlapping filter) path; large fan-outs from a
// single filter never get here.
func dedupMatches(ms []subMatch) []subMatch {
	if len(ms) < 2 {
		return ms
	}
	w := 0
outer:
	for i := 0; i < len(ms); i++ {
		for j := 0; j < w; j++ {
			if ms[j].id == ms[i].id {
				if ms[i].qos > ms[j].qos {
					ms[j].qos = ms[i].qos
				}
				continue outer
			}
		}
		ms[w] = ms[i]
		w++
	}
	return ms[:w]
}

// match collects (clientID, qos) pairs whose filters match topic, one entry
// per client at the highest granted QoS. Allocating convenience wrapper
// around matchInto, used by the synchronous compatibility path and tests.
func (t *subTree) match(topic string) map[string]byte {
	ms, _ := t.matchInto(topic, nil)
	out := make(map[string]byte, len(ms))
	for _, m := range ms {
		if cur, ok := out[m.id]; !ok || m.qos > cur {
			out[m.id] = m.qos
		}
	}
	return out
}
