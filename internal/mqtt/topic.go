package mqtt

import (
	"fmt"
	"strings"
)

// ValidateTopicName checks a concrete topic (no wildcards) used in PUBLISH.
func ValidateTopicName(topic string) error {
	if topic == "" {
		return fmt.Errorf("mqtt: empty topic")
	}
	if strings.ContainsAny(topic, "+#") {
		return fmt.Errorf("mqtt: wildcard in topic name %q", topic)
	}
	if strings.ContainsRune(topic, 0) {
		return fmt.Errorf("mqtt: NUL in topic name")
	}
	return nil
}

// ValidateTopicFilter checks a subscription filter, allowing '+' and a
// trailing '#' per the 3.1.1 rules.
func ValidateTopicFilter(filter string) error {
	if filter == "" {
		return fmt.Errorf("mqtt: empty topic filter")
	}
	if strings.ContainsRune(filter, 0) {
		return fmt.Errorf("mqtt: NUL in topic filter")
	}
	levels := strings.Split(filter, "/")
	for i, lv := range levels {
		switch {
		case lv == "#":
			if i != len(levels)-1 {
				return fmt.Errorf("mqtt: '#' not at end of filter %q", filter)
			}
		case lv == "+":
			// single-level wildcard is fine anywhere
		case strings.ContainsAny(lv, "+#"):
			return fmt.Errorf("mqtt: wildcard mixed into level %q of filter %q", lv, filter)
		}
	}
	return nil
}

// MatchTopic reports whether the concrete topic matches the filter under
// MQTT 3.1.1 wildcard semantics. Topics beginning with '$' are not matched
// by wildcard-leading filters (the $SYS rule).
func MatchTopic(filter, topic string) bool {
	if filter == topic {
		return true
	}
	fl := strings.Split(filter, "/")
	tl := strings.Split(topic, "/")
	// $-prefixed topics must not match filters starting with a wildcard.
	if len(tl) > 0 && strings.HasPrefix(tl[0], "$") && (fl[0] == "+" || fl[0] == "#") {
		return false
	}
	for i, f := range fl {
		if f == "#" {
			return true
		}
		if i >= len(tl) {
			return false
		}
		if f != "+" && f != tl[i] {
			return false
		}
	}
	return len(fl) == len(tl)
}

// subTree is a trie over topic levels used by the broker to find matching
// subscribers quickly. Not safe for concurrent use; the broker guards it.
type subTree struct {
	children map[string]*subTree
	subs     map[string]byte // client id -> granted QoS
}

func newSubTree() *subTree {
	return &subTree{children: make(map[string]*subTree), subs: make(map[string]byte)}
}

// add registers clientID under filter with qos, replacing any previous QoS.
func (t *subTree) add(filter, clientID string, qos byte) {
	node := t
	for _, lv := range strings.Split(filter, "/") {
		child := node.children[lv]
		if child == nil {
			child = newSubTree()
			node.children[lv] = child
		}
		node = child
	}
	node.subs[clientID] = qos
}

// remove deletes clientID's subscription under filter. It reports whether a
// subscription was actually removed. Empty branches are pruned.
func (t *subTree) remove(filter, clientID string) bool {
	levels := strings.Split(filter, "/")
	return t.removeLevels(levels, clientID)
}

func (t *subTree) removeLevels(levels []string, clientID string) bool {
	if len(levels) == 0 {
		if _, ok := t.subs[clientID]; ok {
			delete(t.subs, clientID)
			return true
		}
		return false
	}
	child := t.children[levels[0]]
	if child == nil {
		return false
	}
	removed := child.removeLevels(levels[1:], clientID)
	if removed && len(child.subs) == 0 && len(child.children) == 0 {
		delete(t.children, levels[0])
	}
	return removed
}

// removeAll deletes every subscription of clientID anywhere in the tree.
func (t *subTree) removeAll(clientID string) {
	delete(t.subs, clientID)
	for lv, child := range t.children {
		child.removeAll(clientID)
		if len(child.subs) == 0 && len(child.children) == 0 {
			delete(t.children, lv)
		}
	}
}

// match collects (clientID, qos) pairs whose filters match topic. A client
// subscribed via several overlapping filters is reported once at the
// highest granted QoS.
func (t *subTree) match(topic string) map[string]byte {
	out := make(map[string]byte)
	tl := strings.Split(topic, "/")
	dollar := len(tl) > 0 && strings.HasPrefix(tl[0], "$")
	t.matchLevels(tl, dollar, true, out)
	return out
}

func (t *subTree) matchLevels(levels []string, dollar, first bool, out map[string]byte) {
	if len(levels) == 0 {
		collect(t.subs, out)
		// "sport/#" matches "sport" too: a '#' child at the terminal level.
		if h := t.children["#"]; h != nil {
			collect(h.subs, out)
		}
		return
	}
	lv := levels[0]
	if child := t.children[lv]; child != nil {
		child.matchLevels(levels[1:], dollar, false, out)
	}
	// Wildcards never match the first level of $-topics.
	if dollar && first {
		return
	}
	if child := t.children["+"]; child != nil {
		child.matchLevels(levels[1:], dollar, false, out)
	}
	if child := t.children["#"]; child != nil {
		collect(child.subs, out)
	}
}

func collect(src, dst map[string]byte) {
	for id, q := range src {
		if cur, ok := dst[id]; !ok || q > cur {
			dst[id] = q
		}
	}
}
