// Package mqtt implements the subset of MQTT 3.1.1 the SWAMP platform uses
// as its device transport: CONNECT/CONNACK, PUBLISH with QoS 0 and 1
// (PUBACK), SUBSCRIBE/SUBACK, UNSUBSCRIBE/UNSUBACK, PING and DISCONNECT,
// plus retained messages and the standard '+' / '#' topic wildcards.
//
// The wire codec is the real 3.1.1 framing (fixed header, varint remaining
// length, UTF-8 strings), so the broker can serve genuine TCP clients; an
// additional transport runs the same packets over simnet links to model
// lossy rural connections beneath the MQTT layer.
package mqtt

import (
	"bytes"
	"errors"
	"fmt"
	"io"
)

// PacketType is the 4-bit MQTT control packet type.
type PacketType byte

// MQTT 3.1.1 control packet types (the implemented subset).
const (
	CONNECT     PacketType = 1
	CONNACK     PacketType = 2
	PUBLISH     PacketType = 3
	PUBACK      PacketType = 4
	SUBSCRIBE   PacketType = 8
	SUBACK      PacketType = 9
	UNSUBSCRIBE PacketType = 10
	UNSUBACK    PacketType = 11
	PINGREQ     PacketType = 12
	PINGRESP    PacketType = 13
	DISCONNECT  PacketType = 14
)

var typeNames = map[PacketType]string{
	CONNECT: "CONNECT", CONNACK: "CONNACK", PUBLISH: "PUBLISH", PUBACK: "PUBACK",
	SUBSCRIBE: "SUBSCRIBE", SUBACK: "SUBACK", UNSUBSCRIBE: "UNSUBSCRIBE",
	UNSUBACK: "UNSUBACK", PINGREQ: "PINGREQ", PINGRESP: "PINGRESP", DISCONNECT: "DISCONNECT",
}

// String implements fmt.Stringer.
func (t PacketType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("packet-type(%d)", byte(t))
}

// Connect return codes carried in CONNACK.
const (
	ConnAccepted          byte = 0
	ConnRefusedProtocol   byte = 1
	ConnRefusedIdentifier byte = 2
	ConnRefusedBadAuth    byte = 4
	ConnRefusedNotAuthed  byte = 5
	// ConnRefusedQuota refuses a CONNECT whose tenant is suspended or in
	// sustained quota debt. 3.1.1 has no code for this, so the broker
	// borrows MQTT 5's quota-exceeded reason code; clients should treat
	// it as "try again later", not as an authentication failure.
	ConnRefusedQuota byte = 0x97
)

// Packet is the decoded form of one MQTT control packet. A single struct
// (rather than one type per packet) keeps the codec and the broker's
// dispatch loop simple; unused fields are zero.
type Packet struct {
	Type PacketType

	// CONNECT
	ClientID     string
	Username     string
	Password     string
	KeepAliveSec uint16
	CleanSession bool

	// CONNACK
	ReturnCode     byte
	SessionPresent bool

	// PUBLISH
	Topic    string
	Payload  []byte
	QoS      byte
	Retain   bool
	Dup      bool
	PacketID uint16 // also PUBACK / SUBSCRIBE / SUBACK / UNSUBSCRIBE / UNSUBACK

	// SUBSCRIBE / UNSUBSCRIBE
	Filters []Subscription
	// SUBACK
	GrantedQoS []byte
}

// Subscription pairs a topic filter with a requested QoS.
type Subscription struct {
	Filter string
	QoS    byte
}

// ErrMalformed is wrapped by all decode errors.
var ErrMalformed = errors.New("mqtt: malformed packet")

const maxRemainingLength = 268_435_455 // MQTT spec maximum

// protocolName and protocolLevel identify MQTT 3.1.1 in CONNECT.
const (
	protocolName  = "MQTT"
	protocolLevel = 4
)

// Encode serialises p into MQTT 3.1.1 wire format.
func (p *Packet) Encode() ([]byte, error) {
	var body bytes.Buffer
	var flags byte

	switch p.Type {
	case CONNECT:
		writeString(&body, protocolName)
		body.WriteByte(protocolLevel)
		var connectFlags byte
		if p.CleanSession {
			connectFlags |= 0x02
		}
		if p.Username != "" {
			connectFlags |= 0x80
		}
		if p.Password != "" {
			connectFlags |= 0x40
		}
		body.WriteByte(connectFlags)
		writeUint16(&body, p.KeepAliveSec)
		writeString(&body, p.ClientID)
		if p.Username != "" {
			writeString(&body, p.Username)
		}
		if p.Password != "" {
			writeString(&body, p.Password)
		}

	case CONNACK:
		var ack byte
		if p.SessionPresent {
			ack = 1
		}
		body.WriteByte(ack)
		body.WriteByte(p.ReturnCode)

	case PUBLISH:
		if p.QoS > 1 {
			return nil, fmt.Errorf("mqtt: QoS %d unsupported (only 0 and 1)", p.QoS)
		}
		if err := ValidateTopicName(p.Topic); err != nil {
			return nil, err
		}
		if p.Dup {
			flags |= 0x08
		}
		flags |= p.QoS << 1
		if p.Retain {
			flags |= 0x01
		}
		writeString(&body, p.Topic)
		if p.QoS > 0 {
			writeUint16(&body, p.PacketID)
		}
		body.Write(p.Payload)

	case PUBACK:
		writeUint16(&body, p.PacketID)

	case SUBSCRIBE:
		flags = 0x02 // mandated reserved bits
		writeUint16(&body, p.PacketID)
		if len(p.Filters) == 0 {
			return nil, fmt.Errorf("mqtt: SUBSCRIBE with no filters")
		}
		for _, f := range p.Filters {
			if err := ValidateTopicFilter(f.Filter); err != nil {
				return nil, err
			}
			writeString(&body, f.Filter)
			body.WriteByte(f.QoS)
		}

	case SUBACK:
		writeUint16(&body, p.PacketID)
		body.Write(p.GrantedQoS)

	case UNSUBSCRIBE:
		flags = 0x02
		writeUint16(&body, p.PacketID)
		if len(p.Filters) == 0 {
			return nil, fmt.Errorf("mqtt: UNSUBSCRIBE with no filters")
		}
		for _, f := range p.Filters {
			writeString(&body, f.Filter)
		}

	case UNSUBACK:
		writeUint16(&body, p.PacketID)

	case PINGREQ, PINGRESP, DISCONNECT:
		// no body

	default:
		return nil, fmt.Errorf("mqtt: cannot encode packet type %v", p.Type)
	}

	if body.Len() > maxRemainingLength {
		return nil, fmt.Errorf("mqtt: packet too large (%d bytes)", body.Len())
	}

	var out bytes.Buffer
	out.WriteByte(byte(p.Type)<<4 | flags)
	writeRemainingLength(&out, body.Len())
	out.Write(body.Bytes())
	return out.Bytes(), nil
}

// appendEncode appends p's wire encoding to dst and returns it. Packet
// types on broker hot paths (PUBLISH and the control acks) are encoded
// directly without intermediate buffers; everything else falls back to
// Encode.
func (p *Packet) appendEncode(dst []byte) ([]byte, error) {
	switch p.Type {
	case PUBLISH:
		if p.QoS > 1 {
			return nil, fmt.Errorf("mqtt: QoS %d unsupported (only 0 and 1)", p.QoS)
		}
		if err := ValidateTopicName(p.Topic); err != nil {
			return nil, err
		}
		dst, _ = appendPublish(dst, p.Topic, p.Payload, p.QoS, p.Retain, p.Dup, p.PacketID)
		return dst, nil
	case PUBACK, UNSUBACK:
		return append(dst, byte(p.Type)<<4, 2, byte(p.PacketID>>8), byte(p.PacketID)), nil
	case SUBACK:
		dst = append(dst, byte(SUBACK)<<4)
		dst = appendRemainingLength(dst, 2+len(p.GrantedQoS))
		dst = append(dst, byte(p.PacketID>>8), byte(p.PacketID))
		return append(dst, p.GrantedQoS...), nil
	case PINGREQ, PINGRESP, DISCONNECT:
		return append(dst, byte(p.Type)<<4, 0), nil
	default:
		raw, err := p.Encode()
		if err != nil {
			return nil, err
		}
		return append(dst, raw...), nil
	}
}

// appendPublish appends a complete PUBLISH frame to dst and returns the new
// slice plus the offset of the 2-byte PacketID region within it (0 when
// qos == 0 — QoS-0 frames carry no packet id, and offset 0 can never be a
// valid id position because the fixed header precedes it).
func appendPublish(dst []byte, topic string, payload []byte, qos byte, retain, dup bool, pid uint16) ([]byte, int) {
	flags := qos << 1
	if retain {
		flags |= 0x01
	}
	if dup {
		flags |= 0x08
	}
	body := 2 + len(topic) + len(payload)
	if qos > 0 {
		body += 2
	}
	dst = append(dst, byte(PUBLISH)<<4|flags)
	dst = appendRemainingLength(dst, body)
	dst = append(dst, byte(len(topic)>>8), byte(len(topic)))
	dst = append(dst, topic...)
	pidOff := 0
	if qos > 0 {
		pidOff = len(dst)
		dst = append(dst, byte(pid>>8), byte(pid))
	}
	return append(dst, payload...), pidOff
}

func appendRemainingLength(dst []byte, n int) []byte {
	for {
		b := byte(n % 128)
		n /= 128
		if n > 0 {
			b |= 0x80
		}
		dst = append(dst, b)
		if n == 0 {
			return dst
		}
	}
}

// Decode parses one packet from raw wire bytes (fixed header included).
func Decode(raw []byte) (*Packet, error) {
	r := bytes.NewReader(raw)
	p, err := ReadPacket(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, r.Len())
	}
	return p, nil
}

// ReadPacket reads and decodes exactly one packet from r.
func ReadPacket(r io.Reader) (*Packet, error) {
	var hdr [1]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // propagate io.EOF for clean shutdown detection
	}
	pt := PacketType(hdr[0] >> 4)
	flags := hdr[0] & 0x0f

	rl, err := readRemainingLength(r)
	if err != nil {
		return nil, err
	}
	body := make([]byte, rl)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: short body: %v", ErrMalformed, err)
	}
	return decodeBody(pt, flags, body)
}

func decodeBody(pt PacketType, flags byte, body []byte) (*Packet, error) {
	p := &Packet{Type: pt}
	buf := bytes.NewReader(body)

	switch pt {
	case CONNECT:
		name, err := readString(buf)
		if err != nil {
			return nil, err
		}
		if name != protocolName {
			return nil, fmt.Errorf("%w: protocol name %q", ErrMalformed, name)
		}
		level, err := buf.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: missing protocol level", ErrMalformed)
		}
		if level != protocolLevel {
			return nil, fmt.Errorf("%w: protocol level %d", ErrMalformed, level)
		}
		cf, err := buf.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: missing connect flags", ErrMalformed)
		}
		p.CleanSession = cf&0x02 != 0
		ka, err := readUint16(buf)
		if err != nil {
			return nil, err
		}
		p.KeepAliveSec = ka
		if p.ClientID, err = readString(buf); err != nil {
			return nil, err
		}
		if cf&0x80 != 0 {
			if p.Username, err = readString(buf); err != nil {
				return nil, err
			}
		}
		if cf&0x40 != 0 {
			if p.Password, err = readString(buf); err != nil {
				return nil, err
			}
		}

	case CONNACK:
		if len(body) != 2 {
			return nil, fmt.Errorf("%w: CONNACK body %d bytes", ErrMalformed, len(body))
		}
		p.SessionPresent = body[0]&1 != 0
		p.ReturnCode = body[1]

	case PUBLISH:
		p.Dup = flags&0x08 != 0
		p.QoS = (flags >> 1) & 0x03
		p.Retain = flags&0x01 != 0
		if p.QoS > 1 {
			return nil, fmt.Errorf("%w: QoS %d unsupported", ErrMalformed, p.QoS)
		}
		topic, err := readString(buf)
		if err != nil {
			return nil, err
		}
		p.Topic = topic
		if p.QoS > 0 {
			if p.PacketID, err = readUint16(buf); err != nil {
				return nil, err
			}
		}
		p.Payload = make([]byte, buf.Len())
		if _, err := io.ReadFull(buf, p.Payload); err != nil {
			return nil, fmt.Errorf("%w: payload: %v", ErrMalformed, err)
		}

	case PUBACK, UNSUBACK:
		id, err := readUint16(buf)
		if err != nil {
			return nil, err
		}
		p.PacketID = id

	case SUBSCRIBE:
		id, err := readUint16(buf)
		if err != nil {
			return nil, err
		}
		p.PacketID = id
		for buf.Len() > 0 {
			f, err := readString(buf)
			if err != nil {
				return nil, err
			}
			q, err := buf.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("%w: missing subscribe QoS", ErrMalformed)
			}
			p.Filters = append(p.Filters, Subscription{Filter: f, QoS: q})
		}
		if len(p.Filters) == 0 {
			return nil, fmt.Errorf("%w: SUBSCRIBE with no filters", ErrMalformed)
		}

	case SUBACK:
		id, err := readUint16(buf)
		if err != nil {
			return nil, err
		}
		p.PacketID = id
		p.GrantedQoS = make([]byte, buf.Len())
		if _, err := io.ReadFull(buf, p.GrantedQoS); err != nil {
			return nil, fmt.Errorf("%w: SUBACK codes: %v", ErrMalformed, err)
		}

	case UNSUBSCRIBE:
		id, err := readUint16(buf)
		if err != nil {
			return nil, err
		}
		p.PacketID = id
		for buf.Len() > 0 {
			f, err := readString(buf)
			if err != nil {
				return nil, err
			}
			p.Filters = append(p.Filters, Subscription{Filter: f})
		}

	case PINGREQ, PINGRESP, DISCONNECT:
		if len(body) != 0 {
			return nil, fmt.Errorf("%w: %v with body", ErrMalformed, pt)
		}

	default:
		return nil, fmt.Errorf("%w: unknown packet type %d", ErrMalformed, pt)
	}
	return p, nil
}

// --- primitive encoders / decoders ---

func writeUint16(w *bytes.Buffer, v uint16) {
	w.WriteByte(byte(v >> 8))
	w.WriteByte(byte(v))
}

func readUint16(r *bytes.Reader) (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("%w: short uint16", ErrMalformed)
	}
	return uint16(b[0])<<8 | uint16(b[1]), nil
}

func writeString(w *bytes.Buffer, s string) {
	writeUint16(w, uint16(len(s)))
	w.WriteString(s)
}

func readString(r *bytes.Reader) (string, error) {
	n, err := readUint16(r)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("%w: short string", ErrMalformed)
	}
	return string(b), nil
}

func writeRemainingLength(w *bytes.Buffer, n int) {
	for {
		b := byte(n % 128)
		n /= 128
		if n > 0 {
			b |= 0x80
		}
		w.WriteByte(b)
		if n == 0 {
			return
		}
	}
}

func readRemainingLength(r io.Reader) (int, error) {
	mult := 1
	val := 0
	var b [1]byte
	for i := 0; i < 4; i++ {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, fmt.Errorf("%w: short remaining length", ErrMalformed)
		}
		val += int(b[0]&0x7f) * mult
		if b[0]&0x80 == 0 {
			return val, nil
		}
		mult *= 128
	}
	return 0, fmt.Errorf("%w: remaining length overflow", ErrMalformed)
}
