package mqtt

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/simnet"
)

// Transport moves whole MQTT packets between a client and the broker. Two
// implementations exist: StreamTransport over a net.Conn (real TCP framing)
// and SimTransport over a simnet endpoint (one frame per packet, so the
// simulated link's loss applies per-packet, beneath the QoS layer).
type Transport interface {
	// WritePacket sends one packet. It may silently lose the packet if the
	// underlying medium does (SimTransport); stream transports never do.
	WritePacket(p *Packet) error
	// ReadPacket blocks for the next packet. io.EOF / ErrTransportClosed
	// signal an orderly close.
	ReadPacket() (*Packet, error)
	// Close tears the transport down, unblocking pending reads.
	Close() error
	// RemoteAddr describes the peer for logging.
	RemoteAddr() string
}

// ErrTransportClosed is returned by ReadPacket after Close.
var ErrTransportClosed = errors.New("mqtt: transport closed")

// streamWriteBuf sizes the buffered writer; larger than the default flush
// watermark so the watermark, not bufio, decides when bytes hit the socket.
const streamWriteBuf = 32 << 10

// StreamTransport frames packets over a byte stream (normally TCP).
type StreamTransport struct {
	conn net.Conn
	r    *bufio.Reader

	wmu sync.Mutex // serialise writers
	w   *bufio.Writer
}

// NewStreamTransport wraps conn.
func NewStreamTransport(conn net.Conn) *StreamTransport {
	return &StreamTransport{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriterSize(conn, streamWriteBuf)}
}

// WritePacket implements Transport. Packets written this way are flushed
// immediately (control traffic and client-side writes keep per-packet
// latency); only WriteFrame batches.
func (t *StreamTransport) WritePacket(p *Packet) error {
	buf := getWire()
	raw, err := p.appendEncode(buf)
	if err != nil {
		putWire(buf)
		return err
	}
	t.wmu.Lock()
	_, werr := t.w.Write(raw)
	if werr == nil {
		werr = t.w.Flush()
	}
	t.wmu.Unlock()
	putWire(raw)
	return werr
}

// WriteFrame implements FrameWriter: the shared frame's bytes are copied
// into the buffered writer with the PacketID/DUP region patched for this
// target. No flush — the session writer flushes on queue-empty or at its
// byte watermark.
func (t *StreamTransport) WriteFrame(f *Frame, pid uint16, dup bool) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	b0 := f.buf[0]
	if dup {
		b0 |= 0x08
	}
	if err := t.w.WriteByte(b0); err != nil {
		return err
	}
	if f.pidOff == 0 {
		_, err := t.w.Write(f.buf[1:])
		return err
	}
	if _, err := t.w.Write(f.buf[1:f.pidOff]); err != nil {
		return err
	}
	if err := t.w.WriteByte(byte(pid >> 8)); err != nil {
		return err
	}
	if err := t.w.WriteByte(byte(pid)); err != nil {
		return err
	}
	_, err := t.w.Write(f.buf[f.pidOff+2:])
	return err
}

// Flush implements Flusher, pushing buffered frames to the socket.
func (t *StreamTransport) Flush() error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.w.Flush()
}

// ReadPacket implements Transport.
func (t *StreamTransport) ReadPacket() (*Packet, error) {
	return ReadPacket(t.r)
}

// Close implements Transport.
func (t *StreamTransport) Close() error { return t.conn.Close() }

// RemoteAddr implements Transport.
func (t *StreamTransport) RemoteAddr() string {
	if a := t.conn.RemoteAddr(); a != nil {
		return a.String()
	}
	return "stream"
}

// SetReadDeadline exposes the conn deadline for keepalive enforcement.
func (t *StreamTransport) SetReadDeadline(at time.Time) error {
	return t.conn.SetReadDeadline(at)
}

// SimTransport carries one encoded packet per simnet frame. Loss on the
// simulated link silently discards individual packets — exactly the failure
// the QoS 1 retransmission path must absorb.
type SimTransport struct {
	ep   *simnet.Endpoint
	name string

	closed chan struct{}
	once   *sync.Once
}

// NewSimTransport wraps one endpoint of a simnet duplex.
func NewSimTransport(ep *simnet.Endpoint, name string) *SimTransport {
	return &SimTransport{ep: ep, name: name, closed: make(chan struct{}), once: new(sync.Once)}
}

// WritePacket implements Transport.
func (t *SimTransport) WritePacket(p *Packet) error {
	select {
	case <-t.closed:
		return ErrTransportClosed
	default:
	}
	raw, err := p.appendEncode(getWire())
	if err != nil {
		putWire(raw)
		return err
	}
	// Ownership of raw transfers to the link; the receiving SimTransport
	// recycles it after decode.
	return t.ep.SendOwned(raw)
}

// WriteFrame implements FrameWriter: the shared frame is patched into a
// pooled staging buffer and handed to the link without a second copy.
func (t *SimTransport) WriteFrame(f *Frame, pid uint16, dup bool) error {
	select {
	case <-t.closed:
		return ErrTransportClosed
	default:
	}
	raw := f.appendPatched(getWire(), pid, dup)
	return t.ep.SendOwned(raw)
}

// ReadPacket implements Transport.
func (t *SimTransport) ReadPacket() (*Packet, error) {
	select {
	case raw, ok := <-t.ep.Recv():
		if !ok {
			return nil, ErrTransportClosed
		}
		p, err := Decode(raw)
		// Decode copies topic/payload/granted out of raw, so the wire buffer
		// can go straight back to the pool even on success.
		putWire(raw)
		return p, err
	case <-t.closed:
		return nil, ErrTransportClosed
	}
}

// Close implements Transport.
func (t *SimTransport) Close() error {
	t.once.Do(func() { close(t.closed) })
	return nil
}

// RemoteAddr implements Transport.
func (t *SimTransport) RemoteAddr() string { return "sim:" + t.name }

// SlowTransport is a broker-side Transport with no real peer: inbound
// packets are injected by the driver and every outbound PUBLISH write costs
// Delay — a subscriber consuming slower than the farm publishes. Benchmarks
// and the swamp-sim -mqttbench stress tool use it to model a wedged link
// without standing up a socket. A Delay of 0 models a subscriber that sinks
// instantly.
type SlowTransport struct {
	// Delay is charged on every PUBLISH write. Immutable after Attach.
	Delay time.Duration

	in     chan *Packet
	closed chan struct{}
	once   sync.Once
	pubs   atomic.Int64
}

// NewSlowTransport builds a SlowTransport with the given per-PUBLISH delay.
func NewSlowTransport(delay time.Duration) *SlowTransport {
	return &SlowTransport{Delay: delay, in: make(chan *Packet, 16), closed: make(chan struct{})}
}

// Inject feeds one inbound packet (CONNECT, SUBSCRIBE, ...) to the broker.
func (t *SlowTransport) Inject(p *Packet) { t.in <- p }

// PublishCount reports how many PUBLISH packets the broker managed to write.
func (t *SlowTransport) PublishCount() int64 { return t.pubs.Load() }

// WritePacket implements Transport.
func (t *SlowTransport) WritePacket(p *Packet) error {
	if p.Type == PUBLISH && t.Delay > 0 {
		timer := time.NewTimer(t.Delay)
		select {
		case <-timer.C:
		case <-t.closed:
			timer.Stop()
			return ErrTransportClosed
		}
	}
	select {
	case <-t.closed:
		return ErrTransportClosed
	default:
	}
	if p.Type == PUBLISH {
		t.pubs.Add(1)
	}
	return nil
}

// WriteFrame implements FrameWriter with the same delay/count semantics as
// WritePacket (frames are always PUBLISH).
func (t *SlowTransport) WriteFrame(f *Frame, pid uint16, dup bool) error {
	if t.Delay > 0 {
		timer := time.NewTimer(t.Delay)
		select {
		case <-timer.C:
		case <-t.closed:
			timer.Stop()
			return ErrTransportClosed
		}
	}
	select {
	case <-t.closed:
		return ErrTransportClosed
	default:
	}
	t.pubs.Add(1)
	return nil
}

// ReadPacket implements Transport.
func (t *SlowTransport) ReadPacket() (*Packet, error) {
	select {
	case p := <-t.in:
		return p, nil
	case <-t.closed:
		return nil, ErrTransportClosed
	}
}

// Close implements Transport.
func (t *SlowTransport) Close() error {
	t.once.Do(func() { close(t.closed) })
	return nil
}

// RemoteAddr implements Transport.
func (t *SlowTransport) RemoteAddr() string { return "slow" }

// NewSimPair builds a connected (client, broker-side) transport pair over a
// fresh simnet duplex with cfg impairments. Closing either side closes the
// pair, mirroring TCP connection semantics. The returned cleanup closes the
// duplex.
func NewSimPair(cfg simnet.Config, name string) (client, server Transport, cleanup func(), err error) {
	d, err := simnet.NewDuplex(cfg)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("mqtt: sim pair: %w", err)
	}
	// Shared close signal: like a TCP conn, either endpoint closing tears
	// down both directions.
	closed := make(chan struct{})
	once := new(sync.Once)
	c := &SimTransport{ep: d.A, name: name + "-client", closed: closed, once: once}
	s := &SimTransport{ep: d.B, name: name + "-server", closed: closed, once: once}
	return c, s, func() {
		c.Close()
		d.Close()
	}, nil
}
