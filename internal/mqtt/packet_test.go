package mqtt

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	raw, err := p.Encode()
	if err != nil {
		t.Fatalf("encode %v: %v", p.Type, err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatalf("decode %v: %v", p.Type, err)
	}
	return got
}

func TestPacketRoundTripConnect(t *testing.T) {
	tests := []Packet{
		{Type: CONNECT, ClientID: "dev-1", KeepAliveSec: 30, CleanSession: true},
		{Type: CONNECT, ClientID: "dev-2", Username: "u", Password: "p", KeepAliveSec: 0},
		{Type: CONNECT, ClientID: "dev-3", Username: "only-user"},
	}
	for _, tc := range tests {
		got := roundTrip(t, &tc)
		if got.ClientID != tc.ClientID || got.Username != tc.Username ||
			got.Password != tc.Password || got.KeepAliveSec != tc.KeepAliveSec ||
			got.CleanSession != tc.CleanSession {
			t.Errorf("CONNECT round trip: got %+v want %+v", got, tc)
		}
	}
}

func TestPacketRoundTripPublish(t *testing.T) {
	tests := []Packet{
		{Type: PUBLISH, Topic: "swamp/farm1/soil", Payload: []byte("m|0.23"), QoS: 0},
		{Type: PUBLISH, Topic: "a/b/c", Payload: nil, QoS: 1, PacketID: 77, Retain: true},
		{Type: PUBLISH, Topic: "x", Payload: bytes.Repeat([]byte{0xAB}, 300), QoS: 1, PacketID: 1, Dup: true},
	}
	for _, tc := range tests {
		got := roundTrip(t, &tc)
		if got.Topic != tc.Topic || !bytes.Equal(got.Payload, tc.Payload) ||
			got.QoS != tc.QoS || got.Retain != tc.Retain || got.Dup != tc.Dup {
			t.Errorf("PUBLISH round trip: got %+v want %+v", got, tc)
		}
		if tc.QoS > 0 && got.PacketID != tc.PacketID {
			t.Errorf("PUBLISH packet id: got %d want %d", got.PacketID, tc.PacketID)
		}
	}
}

func TestPacketRoundTripSubscribe(t *testing.T) {
	p := Packet{Type: SUBSCRIBE, PacketID: 9, Filters: []Subscription{
		{Filter: "swamp/+/soil", QoS: 1},
		{Filter: "swamp/#", QoS: 0},
	}}
	got := roundTrip(t, &p)
	if got.PacketID != 9 || !reflect.DeepEqual(got.Filters, p.Filters) {
		t.Errorf("SUBSCRIBE round trip: got %+v want %+v", got, p)
	}
}

func TestPacketRoundTripControl(t *testing.T) {
	for _, typ := range []PacketType{PINGREQ, PINGRESP, DISCONNECT} {
		p := Packet{Type: typ}
		got := roundTrip(t, &p)
		if got.Type != typ {
			t.Errorf("round trip %v: got %v", typ, got.Type)
		}
	}
	ack := Packet{Type: CONNACK, ReturnCode: ConnRefusedBadAuth, SessionPresent: true}
	got := roundTrip(t, &ack)
	if got.ReturnCode != ConnRefusedBadAuth || !got.SessionPresent {
		t.Errorf("CONNACK round trip: got %+v", got)
	}
	pa := Packet{Type: PUBACK, PacketID: 55}
	if got := roundTrip(t, &pa); got.PacketID != 55 {
		t.Errorf("PUBACK round trip: got %+v", got)
	}
	sa := Packet{Type: SUBACK, PacketID: 3, GrantedQoS: []byte{1, 0x80}}
	got = roundTrip(t, &sa)
	if got.PacketID != 3 || !bytes.Equal(got.GrantedQoS, sa.GrantedQoS) {
		t.Errorf("SUBACK round trip: got %+v", got)
	}
	ua := Packet{Type: UNSUBSCRIBE, PacketID: 4, Filters: []Subscription{{Filter: "a/b"}}}
	got = roundTrip(t, &ua)
	if got.PacketID != 4 || len(got.Filters) != 1 || got.Filters[0].Filter != "a/b" {
		t.Errorf("UNSUBSCRIBE round trip: got %+v", got)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	bad := []Packet{
		{Type: PUBLISH, Topic: "has/+/wildcard", QoS: 0},
		{Type: PUBLISH, Topic: "", QoS: 0},
		{Type: PUBLISH, Topic: "t", QoS: 2},
		{Type: SUBSCRIBE, PacketID: 1},
		{Type: SUBSCRIBE, PacketID: 1, Filters: []Subscription{{Filter: "a/#/b"}}},
		{Type: PacketType(0)},
	}
	for i, p := range bad {
		if _, err := p.Encode(); err == nil {
			t.Errorf("case %d: encode of invalid packet succeeded", i)
		}
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	good, err := (&Packet{Type: PUBLISH, Topic: "a/b", Payload: []byte("xyz"), QoS: 1, PacketID: 5}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n < len(good); n++ {
		if _, err := Decode(good[:n]); err == nil {
			t.Errorf("decode of %d/%d-byte prefix succeeded", n, len(good))
		}
	}
	// Trailing garbage must also fail.
	if _, err := Decode(append(append([]byte{}, good...), 0x00)); err == nil {
		t.Error("decode with trailing byte succeeded")
	}
}

// TestPublishRoundTripProperty drives the PUBLISH codec with random topics
// and payloads.
func TestPublishRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(payload []byte, id uint16, qosBit, retain bool) bool {
		topicLevels := 1 + rng.Intn(4)
		topic := ""
		for i := 0; i < topicLevels; i++ {
			if i > 0 {
				topic += "/"
			}
			topic += string(rune('a' + rng.Intn(26)))
		}
		var qos byte
		if qosBit {
			qos = 1
		}
		if id == 0 {
			id = 1
		}
		p := Packet{Type: PUBLISH, Topic: topic, Payload: payload, QoS: qos, PacketID: id, Retain: retain}
		raw, err := p.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(raw)
		if err != nil {
			return false
		}
		if got.Topic != topic || got.QoS != qos || got.Retain != retain {
			return false
		}
		if len(payload) == 0 {
			return len(got.Payload) == 0
		}
		return bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRemainingLengthBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 16383, 16384, 2_097_151, 2_097_152} {
		var buf bytes.Buffer
		writeRemainingLength(&buf, n)
		got, err := readRemainingLength(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got != n {
			t.Errorf("remaining length %d: got %d", n, got)
		}
	}
}
