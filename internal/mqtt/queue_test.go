package mqtt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
)

// scriptTransport is a broker-side transport driven directly by the test:
// the test injects inbound packets with send() and inspects everything the
// broker wrote. Writes of PUBLISH packets can be stalled, modelling a
// subscriber that stops draining its link — the failure the per-session
// queues must isolate.
type scriptTransport struct {
	in      chan *Packet
	release chan struct{} // closed → stalled writes unblock
	closed  chan struct{}
	once    sync.Once

	stalled atomic.Bool

	mu     sync.Mutex
	wrote  []*Packet // every packet the broker wrote
	pubs   int       // PUBLISH count, for cheap polling
	lastCk *Packet
}

func newScriptTransport() *scriptTransport {
	return &scriptTransport{
		in:      make(chan *Packet, 64),
		release: make(chan struct{}),
		closed:  make(chan struct{}),
	}
}

func (t *scriptTransport) send(p *Packet) { t.in <- p }

func (t *scriptTransport) WritePacket(p *Packet) error {
	if p.Type == PUBLISH && t.stalled.Load() {
		select {
		case <-t.release:
		case <-t.closed:
			return ErrTransportClosed
		}
	}
	select {
	case <-t.closed:
		return ErrTransportClosed
	default:
	}
	t.mu.Lock()
	t.wrote = append(t.wrote, p)
	if p.Type == PUBLISH {
		t.pubs++
	}
	t.mu.Unlock()
	return nil
}

func (t *scriptTransport) ReadPacket() (*Packet, error) {
	select {
	case p := <-t.in:
		return p, nil
	case <-t.closed:
		return nil, ErrTransportClosed
	}
}

func (t *scriptTransport) Close() error {
	t.once.Do(func() { close(t.closed) })
	return nil
}

func (t *scriptTransport) RemoteAddr() string { return "script" }

func (t *scriptTransport) publishCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pubs
}

func (t *scriptTransport) publishes() []*Packet {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Packet
	for _, p := range t.wrote {
		if p.Type == PUBLISH {
			out = append(out, p)
		}
	}
	return out
}

// attachScripted connects a scripted session (CONNECT + one SUBSCRIBE) and
// waits for the broker to acknowledge both.
func attachScripted(t *testing.T, b *Broker, id, filter string, qos byte) *scriptTransport {
	t.Helper()
	st := newScriptTransport()
	t.Cleanup(func() { st.Close() })
	b.AttachTransport(st)
	st.send(&Packet{Type: CONNECT, ClientID: id})
	st.send(&Packet{Type: SUBSCRIBE, PacketID: 1, Filters: []Subscription{{Filter: filter, QoS: qos}}})
	waitFor(t, time.Second, func() bool {
		st.mu.Lock()
		defer st.mu.Unlock()
		var seenConnack, seenSuback bool
		for _, p := range st.wrote {
			switch p.Type {
			case CONNACK:
				seenConnack = true
			case SUBACK:
				seenSuback = true
			}
		}
		return seenConnack && seenSuback
	})
	return st
}

// TestStalledSubscriberIsolation: with one subscriber wedged mid-write, a
// healthy subscriber on the same topic still receives every message — the
// stall overflows only the stalled session's queue.
func TestStalledSubscriberIsolation(t *testing.T) {
	b := NewBroker(BrokerConfig{SessionQueueLen: 8})
	defer b.Close()

	// The stalled subscriber takes QoS 0 deliveries (overflow drops);
	// the publisher uses QoS 1 so each publish is broker-acked — publish
	// progress therefore proves the stall is not back-pressuring routing.
	stalled := attachScripted(t, b, "stalled", "iso/#", 0)
	stalled.stalled.Store(true)

	healthy := newTestPair(t, b, "healthy")
	var mu sync.Mutex
	seen := make(map[byte]bool)
	if _, err := healthy.Subscribe("iso/#", 1, func(m Message) {
		mu.Lock()
		seen[m.Payload[0]] = true
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	pub := newTestPair(t, b, "pub")

	const n = 200
	for i := 0; i < n; i++ {
		if err := pub.Publish("iso/x", []byte{byte(i)}, 1, false); err != nil {
			t.Fatal(err)
		}
	}
	// Every message reaches the healthy subscriber even though the stalled
	// session never drains; the stalled queue overflowed instead.
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seen) == n
	})
	if dropped := b.Metrics().Counter("mqtt.queue.dropped").Value(); dropped == 0 {
		t.Error("stalled session overflow not counted in mqtt.queue.dropped")
	}
	close(stalled.release) // unwedge before Close so the writer exits fast
}

// TestQueueOverflowDropsOldestQoS0: a full session queue drops the oldest
// queued QoS 0 packet, so the freshest state wins — and the drop count is
// exported.
func TestQueueOverflowDropsOldestQoS0(t *testing.T) {
	const qlen = 4
	b := NewBroker(BrokerConfig{SessionQueueLen: qlen})
	defer b.Close()

	st := attachScripted(t, b, "slow", "of/#", 0)
	st.stalled.Store(true)

	pub := newTestPair(t, b, "pub")
	const n = 32
	for i := 0; i < n; i++ {
		if err := pub.Publish("of/x", []byte(fmt.Sprintf("m%02d", i)), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool {
		return b.Metrics().Counter("mqtt.queue.dropped").Value() > 0
	})
	close(st.release)
	// Once unwedged the queue drains; drop-oldest means far fewer than n
	// messages survived, and the newest one always did.
	waitFor(t, 2*time.Second, func() bool {
		pubs := st.publishes()
		return len(pubs) > 0 && string(pubs[len(pubs)-1].Payload) == fmt.Sprintf("m%02d", n-1)
	})
	time.Sleep(50 * time.Millisecond)
	if pubs := st.publishes(); len(pubs) >= n {
		t.Errorf("stalled session received all %d messages; overflow never dropped", len(pubs))
	}
}

// TestQoS1ParkedThenRedelivered: QoS 1 deliveries that overflow the queue
// are parked, not lost — the writer's retry pass transmits them once the
// session drains, without a DUP flag or a charged retry.
func TestQoS1ParkedThenRedelivered(t *testing.T) {
	b := NewBroker(BrokerConfig{SessionQueueLen: 2, RetryInterval: 30 * time.Millisecond})
	defer b.Close()

	st := attachScripted(t, b, "parker", "park/#", 1)
	st.stalled.Store(true)

	pub := newTestPair(t, b, "pub")
	// Stay within the 4×queue inflight window (8 here): past it deliveries
	// are shed, which TestQoS1InflightWindowBounded covers.
	const n = 8
	for i := 0; i < n; i++ {
		if err := pub.Publish("park/x", []byte(fmt.Sprintf("p%02d", i)), 1, false); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool {
		return b.Metrics().Counter("mqtt.queue.parked").Value() > 0
	})
	close(st.release)
	// Parked messages flow on retry ticks; everything arrives. The
	// scripted session never acks, so retransmissions may add duplicates —
	// count distinct payloads.
	waitFor(t, 3*time.Second, func() bool {
		seen := make(map[string]bool)
		for _, p := range st.publishes() {
			seen[string(p.Payload)] = true
		}
		return len(seen) == n
	})
}

// TestRedeliveryDrivenBySimClock: with a simulated clock wired into the
// broker, QoS 1 redelivery is deterministic — no wall time passes, only
// clock.Advance drives the retry pass, then expiry at MaxRetries.
func TestRedeliveryDrivenBySimClock(t *testing.T) {
	sim := clock.NewSim(time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC))
	b := NewBroker(BrokerConfig{Clock: sim, RetryInterval: time.Second, MaxRetries: 2})
	defer b.Close()

	st := attachScripted(t, b, "noack", "clk/#", 1)

	pub := newTestPair(t, b, "pub")
	if err := pub.Publish("clk/x", []byte("v"), 1, false); err != nil {
		t.Fatal(err)
	}
	// Initial transmission arrives without any clock movement.
	waitFor(t, time.Second, func() bool { return st.publishCount() == 1 })
	if st.publishes()[0].Dup {
		t.Error("first transmission carried DUP")
	}

	// Each advance past RetryInterval yields exactly one DUP retransmission
	// (4 broker goroutines are parked on sim.After: a writer and a
	// keepalive watchdog for each of the pub and noack sessions).
	for want := 2; want <= 3; want++ {
		waitFor(t, time.Second, func() bool { return sim.PendingWaiters() >= 4 })
		sim.Advance(time.Second)
		waitFor(t, time.Second, func() bool { return st.publishCount() == want })
		if last := st.publishes()[want-1]; !last.Dup {
			t.Errorf("retransmission %d missing DUP", want)
		}
	}

	// Past MaxRetries the message expires instead of retransmitting.
	waitFor(t, time.Second, func() bool { return sim.PendingWaiters() >= 4 })
	sim.Advance(time.Second)
	waitFor(t, time.Second, func() bool {
		return b.Metrics().Counter("mqtt.deliver.expired").Value() == 1
	})
	time.Sleep(20 * time.Millisecond)
	if got := st.publishCount(); got != 3 {
		t.Errorf("expired message retransmitted: %d publishes", got)
	}
}

// TestRetainedSharded: retained messages live in a sharded store; storing,
// replacing, clearing and wildcard snapshot-on-subscribe all still work.
func TestRetainedSharded(t *testing.T) {
	b := NewBroker(BrokerConfig{RetainedShards: 4})
	defer b.Close()
	pub := newTestPair(t, b, "pub")
	const topics = 20
	for i := 0; i < topics; i++ {
		if err := pub.Publish(fmt.Sprintf("ret/z%02d", i), []byte{byte(i)}, 0, true); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, time.Second, func() bool { return b.RetainedCount() == topics })

	sub := newTestPair(t, b, "sub")
	var got atomic.Int32
	if _, err := sub.Subscribe("ret/#", 0, func(m Message) {
		if m.Retain {
			got.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return got.Load() == topics })

	// Clearing removes from the right shard.
	if err := pub.Publish("ret/z00", nil, 0, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return b.RetainedCount() == topics-1 })
}

// TestKeepaliveReapsWedgedWriter: a session whose transport blocks writes
// forever (dead TCP peer) must still be reaped by the keepalive watchdog —
// the writer goroutine being stuck mid-WritePacket cannot disable it.
func TestKeepaliveReapsWedgedWriter(t *testing.T) {
	b := NewBroker(BrokerConfig{RetryInterval: 20 * time.Millisecond})
	defer b.Close()

	st := newScriptTransport()
	t.Cleanup(func() { st.Close() })
	b.AttachTransport(st)
	st.stalled.Store(true) // wedge every PUBLISH write from the start
	st.send(&Packet{Type: CONNECT, ClientID: "wedged", KeepAliveSec: 1})
	st.send(&Packet{Type: SUBSCRIBE, PacketID: 1, Filters: []Subscription{{Filter: "wdg/#"}}})
	waitFor(t, time.Second, func() bool { return b.SessionCount() == 1 })

	// Wedge the writer on a delivery, then go silent.
	pub := newTestPair(t, b, "pub")
	if err := pub.Publish("wdg/x", []byte("v"), 0, false); err != nil {
		t.Fatal(err)
	}
	// Silence > 1.5×keepalive → the watchdog drops the session even though
	// the writer is still stuck inside WritePacket.
	waitFor(t, 4*time.Second, func() bool { return b.SessionCount() == 1 }) // pub only
}

// TestQoS1InflightWindowBounded: a wedged session cannot grow its pending
// map without bound — past 4× the queue bound new QoS 1 deliveries are
// shed and counted.
func TestQoS1InflightWindowBounded(t *testing.T) {
	const qlen = 4
	b := NewBroker(BrokerConfig{SessionQueueLen: qlen, RetryInterval: time.Hour})
	defer b.Close()

	st := attachScripted(t, b, "wedged", "win/#", 1)
	st.stalled.Store(true)

	pub := newTestPair(t, b, "pub")
	const n = 64
	for i := 0; i < n; i++ {
		if err := pub.Publish("win/x", []byte{byte(i)}, 1, false); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool {
		return b.Metrics().Counter("mqtt.queue.dropped").Value() > 0
	})
	b.sessMu.RLock()
	s := b.sessions["wedged"]
	b.sessMu.RUnlock()
	s.mu.Lock()
	pending := len(s.pending)
	s.mu.Unlock()
	if pending > 4*qlen {
		t.Errorf("pending window grew to %d, cap is %d", pending, 4*qlen)
	}
	close(st.release)
}

// TestCompatSyncDeliveryStillWorks: the benchmarking compatibility path
// (synchronous fan-out) must remain functionally correct.
func TestCompatSyncDeliveryStillWorks(t *testing.T) {
	b := NewBroker(BrokerConfig{CompatSyncDelivery: true, RetryInterval: 20 * time.Millisecond})
	defer b.Close()
	pub := newTestPair(t, b, "pub")
	sub := newTestPair(t, b, "sub")
	var n atomic.Int32
	if _, err := sub.Subscribe("compat/#", 1, func(Message) { n.Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := pub.Publish("compat/x", []byte{byte(i)}, 1, false); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return n.Load() >= 10 })
}
