package mqtt

import (
	"fmt"
	"testing"
)

func TestMatchTopic(t *testing.T) {
	tests := []struct {
		filter, topic string
		want          bool
	}{
		{"a/b/c", "a/b/c", true},
		{"a/b/c", "a/b/d", false},
		{"a/+/c", "a/b/c", true},
		{"a/+/c", "a/b/d", false},
		{"a/+/+", "a/b/c", true},
		{"+/+/+", "a/b/c", true},
		{"+/+", "a/b/c", false},
		{"a/#", "a/b/c", true},
		{"a/#", "a", true},
		{"#", "a/b/c", true},
		{"#", "$SYS/stats", false},
		{"+/stats", "$SYS/stats", false},
		{"$SYS/#", "$SYS/stats", true},
		{"a/b", "a/b/c", false},
		{"a/b/c", "a/b", false},
		{"swamp/+/soil/+", "swamp/farm1/soil/probe2", true},
		{"swamp/farm1/#", "swamp/farm1/soil/probe2", true},
		{"swamp/farm2/#", "swamp/farm1/soil/probe2", false},
		{"+", "a", true},
		{"+", "a/b", false},
	}
	for _, tc := range tests {
		if got := MatchTopic(tc.filter, tc.topic); got != tc.want {
			t.Errorf("MatchTopic(%q, %q) = %v, want %v", tc.filter, tc.topic, got, tc.want)
		}
	}
}

func TestValidateTopicFilter(t *testing.T) {
	valid := []string{"a", "a/b", "+", "#", "a/+/b", "a/b/#", "+/+/#", "$SYS/#"}
	for _, f := range valid {
		if err := ValidateTopicFilter(f); err != nil {
			t.Errorf("ValidateTopicFilter(%q) = %v, want nil", f, err)
		}
	}
	invalid := []string{"", "a/#/b", "a+/b", "#/a", "a#", "+a"}
	for _, f := range invalid {
		if err := ValidateTopicFilter(f); err == nil {
			t.Errorf("ValidateTopicFilter(%q) = nil, want error", f)
		}
	}
}

func TestValidateTopicName(t *testing.T) {
	if err := ValidateTopicName("swamp/farm/soil"); err != nil {
		t.Errorf("valid topic rejected: %v", err)
	}
	for _, name := range []string{"", "a/+/b", "a/#", "x\x00y"} {
		if err := ValidateTopicName(name); err == nil {
			t.Errorf("ValidateTopicName(%q) = nil, want error", name)
		}
	}
}

func TestSubTreeAddMatchRemove(t *testing.T) {
	tr := newSubTree()
	tr = tr.withSub("a/+/c", "c1", 1)
	tr = tr.withSub("a/#", "c2", 0)
	tr = tr.withSub("a/b/c", "c3", 1)
	tr = tr.withSub("a/b/c", "c1", 0) // c1 twice via overlapping filters

	m := tr.match("a/b/c")
	if len(m) != 3 {
		t.Fatalf("match: got %d subscribers (%v), want 3", len(m), m)
	}
	if m["c1"] != 1 {
		t.Errorf("c1 should keep highest QoS 1, got %d", m["c1"])
	}
	if m["c2"] != 0 || m["c3"] != 1 {
		t.Errorf("unexpected QoS map: %v", m)
	}

	var removed bool
	tr, removed = tr.withoutSub("a/+/c", "c1")
	if !removed {
		t.Error("remove existing subscription returned false")
	}
	tr, removed = tr.withoutSub("a/+/c", "c1")
	if removed {
		t.Error("double remove returned true")
	}
	m = tr.match("a/b/c")
	if m["c1"] != 0 {
		t.Errorf("after removing a/+/c, c1 QoS should come from a/b/c (0), got %d", m["c1"])
	}

	tr, _ = tr.withoutClient("c2")
	m = tr.match("a/zzz")
	if _, ok := m["c2"]; ok {
		t.Error("c2 still matched after withoutClient")
	}
}

// TestSubTreeCopyOnWrite pins the COW contract route() relies on: a
// published tree is never mutated by later subscription changes.
func TestSubTreeCopyOnWrite(t *testing.T) {
	old := newSubTree().withSub("a/b", "c1", 1)
	newer := old.withSub("a/b", "c2", 0)
	newer, _ = newer.withoutSub("a/b", "c1")

	if m := old.match("a/b"); len(m) != 1 || m["c1"] != 1 {
		t.Errorf("old tree changed under mutation: %v", m)
	}
	if m := newer.match("a/b"); len(m) != 1 || m["c2"] != 0 {
		t.Errorf("new tree wrong: %v", m)
	}
}

func TestSubTreeHashAtParentLevel(t *testing.T) {
	tr := newSubTree().withSub("sport/#", "c1", 0)
	if m := tr.match("sport"); len(m) != 1 {
		t.Errorf("'sport/#' should match 'sport' itself, got %v", m)
	}
}

func TestSubTreePruning(t *testing.T) {
	tr := newSubTree()
	for i := 0; i < 50; i++ {
		tr = tr.withSub(fmt.Sprintf("deep/%d/leaf", i), "c", 0)
	}
	for i := 0; i < 50; i++ {
		tr, _ = tr.withoutSub(fmt.Sprintf("deep/%d/leaf", i), "c")
	}
	if len(tr.children) != 0 {
		t.Errorf("tree not pruned: %d root children remain", len(tr.children))
	}
}
