package mqtt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDynamicKnobsUnderLoad hammers the broker's reloadable knobs while
// publishes fan out — the -race run of this test is what proves the
// validate-then-swap reload path can fire mid-traffic.
func TestDynamicKnobsUnderLoad(t *testing.T) {
	b := NewBroker(BrokerConfig{SessionQueueLen: 64})
	defer b.Close()
	pub := newTestPair(t, b, "pub")
	sub := newTestPair(t, b, "sub")

	var delivered atomic.Int64
	if _, err := sub.Subscribe("farm/+/soil", 0, func(Message) { delivered.Add(1) }); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = pub.Publish(fmt.Sprintf("farm/%d/soil", i%8), []byte("0.2"), 0, false)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			b.SetFlushWatermark(1 << (8 + i%8))
			b.SetSessionQueueLen(32 << (i % 4))
			b.SetRouteCacheSize([]int{-1, 16, 0, 4096}[i%4])
			time.Sleep(100 * time.Microsecond)
		}
	}()

	waitFor(t, 5*time.Second, func() bool { return delivered.Load() > 500 })
	close(stop)
	wg.Wait()
}

// TestSessionQueueLenAppliesToNewSessions pins the documented reload
// semantics: an existing session keeps the bound it attached with, and a
// session attached after SetSessionQueueLen gets the new one.
func TestSessionQueueLenAppliesToNewSessions(t *testing.T) {
	b := NewBroker(BrokerConfig{SessionQueueLen: 8})
	defer b.Close()

	before := attachScripted(t, b, "before", "x/#", 0)
	_ = before
	b.SetSessionQueueLen(32)
	attachScripted(t, b, "after", "y/#", 0)

	b.sessMu.RLock()
	defer b.sessMu.RUnlock()
	if got := b.sessions["before"].qcap; got != 8 {
		t.Errorf("pre-reload session qcap = %d, want 8", got)
	}
	if got := b.sessions["after"].qcap; got != 32 {
		t.Errorf("post-reload session qcap = %d, want 32", got)
	}
}

// TestSetRouteCacheDisableDropsCache checks that disabling the route cache
// clears it and stops new inserts.
func TestSetRouteCacheDisableDropsCache(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	pub := newTestPair(t, b, "pub")
	sub := newTestPair(t, b, "sub")

	var n atomic.Int64
	if _, err := sub.Subscribe("cached/topic", 0, func(Message) { n.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("cached/topic", []byte("1"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return n.Load() == 1 })
	if mp := b.routeCache.Load(); mp == nil || (*mp)["cached/topic"] == nil {
		t.Fatal("expected the publish to populate the route cache")
	}

	b.SetRouteCacheSize(-1)
	if b.routeCache.Load() != nil {
		t.Fatal("disabling the route cache must drop it")
	}
	if err := pub.Publish("cached/topic", []byte("2"), 0, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return n.Load() == 2 })
	if b.routeCache.Load() != nil {
		t.Fatal("publishes must not repopulate a disabled route cache")
	}
}
