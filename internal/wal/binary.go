package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/timeseries"
)

// Codec v2 payload bodies. A payload never carries a name twice: strings
// live in the record's Strings table (interned per segment by the frame
// layer) and the body refers to them by record-local uvarint index.
// Values are a tagged union with a JSON-blob escape hatch, so any value
// the v1 codec could carry still round-trips — numbers decode as float64
// either way, matching encoding/json's behaviour for `any`.
//
// Timestamps are varint unix-nanos plus the zone offset. A record whose
// timestamps do not survive the unix-nano round trip (far past/future,
// zero telemetry stamps) falls back to a CodecJSON payload — the per-
// record codec byte makes that free.

// Value union tags.
const (
	vNil   = 0
	vF64   = 1 // 8-byte little-endian float64 bits
	vStr   = 2 // string-table index
	vTrue  = 3
	vFalse = 4
	vJSON  = 5 // uvarint length + raw JSON (trees, exotic scalars)
)

// Time flags.
const (
	tZero = 0
	tUnix = 1 // varint unix-nanos + varint zone-offset seconds
)

// binWriter accumulates a binary payload plus its record-local string
// table. Lookup is a linear scan for the small tables typical of one
// record, switching to a map when a merge batch grows past that.
type binWriter struct {
	buf  []byte
	strs []string
	idx  map[string]int
}

const binWriterMapThreshold = 16

func (w *binWriter) strIdx(s string) uint64 {
	if w.idx != nil {
		if i, ok := w.idx[s]; ok {
			return uint64(i)
		}
	} else {
		for i, t := range w.strs {
			if t == s {
				return uint64(i)
			}
		}
		if len(w.strs) >= binWriterMapThreshold {
			w.idx = make(map[string]int, 2*len(w.strs))
			for i, t := range w.strs {
				w.idx[t] = i
			}
		}
	}
	i := len(w.strs)
	w.strs = append(w.strs, s)
	if w.idx != nil {
		w.idx[s] = i
	}
	return uint64(i)
}

func (w *binWriter) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *binWriter) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *binWriter) u8(b byte)        { w.buf = append(w.buf, b) }
func (w *binWriter) str(s string)     { w.uvarint(w.strIdx(s)) }
func (w *binWriter) f64(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}

func (w *binWriter) record(t Type) Record {
	return Record{Type: t, Codec: CodecBinary, Payload: w.buf, Strings: w.strs}
}

// timeBinaryOK reports whether t survives the unix-nano round trip the
// binary time encoding uses. The zero time is excluded on purpose — it
// gets its own flag.
func timeBinaryOK(t time.Time) bool {
	return t.IsZero() || t.Equal(time.Unix(0, t.UnixNano()))
}

func (w *binWriter) time(t time.Time) {
	if t.IsZero() {
		w.u8(tZero)
		return
	}
	w.u8(tUnix)
	w.varint(t.UnixNano())
	_, off := t.Zone()
	w.varint(int64(off))
}

// value appends the tagged union. It mirrors v1 semantics exactly: the
// scalars encoding/json would round-trip to float64 use vF64, NaN/Inf
// are rejected like encoding/json rejects them, and everything else is
// carried as a JSON blob so replay decodes the same trees v1 would.
func (w *binWriter) value(v any) error {
	switch t := v.(type) {
	case nil:
		w.u8(vNil)
	case float64:
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("wal: unsupported float value %v", t)
		}
		w.u8(vF64)
		w.f64(t)
	case int:
		w.u8(vF64)
		w.f64(float64(t))
	case string:
		w.u8(vStr)
		w.str(t)
	case bool:
		if t {
			w.u8(vTrue)
		} else {
			w.u8(vFalse)
		}
	case json.Number:
		if f, err := t.Float64(); err == nil {
			w.u8(vF64)
			w.f64(f)
			return nil
		}
		return w.jsonValue(v)
	default:
		return w.jsonValue(v)
	}
	return nil
}

func (w *binWriter) jsonValue(v any) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	w.u8(vJSON)
	w.uvarint(uint64(len(blob)))
	w.buf = append(w.buf, blob...)
	return nil
}

// attr appends one named attribute. Callers have already verified the
// timestamp with timeBinaryOK.
func (w *binWriter) attr(name string, a ngsi.Attribute) error {
	w.str(name)
	w.str(a.Type)
	w.time(a.At)
	w.uvarint(uint64(len(a.Metadata)))
	for k, v := range a.Metadata {
		w.str(k)
		w.str(v)
	}
	return w.value(a.Value)
}

// attrs appends an attribute map, distinguishing nil from empty the way
// the JSON codec's `attrs` field (no omitempty) does.
func (w *binWriter) attrs(m map[string]ngsi.Attribute) error {
	if m == nil {
		w.uvarint(0)
		return nil
	}
	w.uvarint(uint64(len(m)) + 1)
	for k, a := range m {
		if err := w.attr(k, a); err != nil {
			return err
		}
	}
	return nil
}

// attrsBinaryOK pre-checks every timestamp in an attribute map.
func attrsBinaryOK(m map[string]ngsi.Attribute) bool {
	for _, a := range m {
		if !timeBinaryOK(a.At) {
			return false
		}
	}
	return true
}

// binReader consumes a binary payload. The first structural failure
// latches err; subsequent reads return zero values, so decode loops can
// check once at the end.
type binReader struct {
	p    []byte
	strs []string
	err  error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wal: corrupt binary payload: %s", what)
	}
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.p)
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.p = r.p[n:]
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.p)
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.p = r.p[n:]
	return v
}

func (r *binReader) u8() byte {
	if r.err != nil {
		return 0
	}
	if len(r.p) == 0 {
		r.fail("u8")
		return 0
	}
	b := r.p[0]
	r.p = r.p[1:]
	return b
}

func (r *binReader) str() string {
	i := r.uvarint()
	if r.err != nil {
		return ""
	}
	if i >= uint64(len(r.strs)) {
		r.fail("string index")
		return ""
	}
	return r.strs[i]
}

func (r *binReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.p) < 8 {
		r.fail("f64")
		return 0
	}
	bits := binary.LittleEndian.Uint64(r.p)
	r.p = r.p[8:]
	return math.Float64frombits(bits)
}

// count reads a length prefix and sanity-bounds it against the bytes
// remaining (each counted element costs at least minBytes), so a corrupt
// count cannot drive an absurd allocation.
func (r *binReader) count(minBytes int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.p)/minBytes)+1 {
		r.fail("count out of range")
		return 0
	}
	return int(v)
}

func (r *binReader) time() time.Time {
	switch r.u8() {
	case tZero:
		return time.Time{}
	case tUnix:
		nanos := r.varint()
		off := r.varint()
		if r.err != nil {
			return time.Time{}
		}
		t := time.Unix(0, nanos)
		if off == 0 {
			return t.UTC()
		}
		return t.In(time.FixedZone("", int(off)))
	default:
		r.fail("time flag")
		return time.Time{}
	}
}

func (r *binReader) value() any {
	switch r.u8() {
	case vNil:
		return nil
	case vF64:
		return r.f64()
	case vStr:
		return r.str()
	case vTrue:
		return true
	case vFalse:
		return false
	case vJSON:
		n := r.count(1)
		if r.err != nil {
			return nil
		}
		if n > len(r.p) {
			r.fail("json blob length")
			return nil
		}
		var v any
		if err := json.Unmarshal(r.p[:n], &v); err != nil {
			r.fail("json blob: " + err.Error())
			return nil
		}
		r.p = r.p[n:]
		return v
	default:
		r.fail("value tag")
		return nil
	}
}

func (r *binReader) attr() (string, ngsi.Attribute) {
	name := r.str()
	var a ngsi.Attribute
	a.Type = r.str()
	a.At = r.time()
	if n := r.count(2); n > 0 {
		a.Metadata = make(map[string]string, n)
		for i := 0; i < n && r.err == nil; i++ {
			k := r.str()
			a.Metadata[k] = r.str()
		}
	}
	a.Value = r.value()
	return name, a
}

func (r *binReader) attrs() map[string]ngsi.Attribute {
	n := r.count(4)
	if r.err != nil || n == 0 {
		return nil // nil map, as the JSON codec decodes `"attrs":null`
	}
	m := make(map[string]ngsi.Attribute, n-1)
	for i := 0; i < n-1 && r.err == nil; i++ {
		k, a := r.attr()
		m[k] = a
	}
	return m
}

// --- per-type bodies -------------------------------------------------

// binEncodeEntityUpsert returns (record, true, nil) on success, or
// ok=false when the entity needs the JSON fallback.
func binEncodeEntityUpsert(e *ngsi.Entity) (Record, bool, error) {
	if !attrsBinaryOK(e.Attrs) {
		return Record{}, false, nil
	}
	w := &binWriter{buf: make([]byte, 0, 64+32*len(e.Attrs))}
	w.str(e.ID)
	w.str(e.Type)
	if err := w.attrs(e.Attrs); err != nil {
		return Record{}, false, err
	}
	return w.record(TypeEntityUpsert), true, nil
}

func binDecodeEntityUpsert(rec Record) (*ngsi.Entity, error) {
	r := &binReader{p: rec.Payload, strs: rec.Strings}
	e := &ngsi.Entity{}
	e.ID = r.str()
	e.Type = r.str()
	e.Attrs = r.attrs()
	if r.err != nil {
		return nil, fmt.Errorf("wal: entity upsert payload: %w", r.err)
	}
	return e, nil
}

func binEncodeEntityMerge(entries []ngsi.MergeEntry) (Record, bool, error) {
	for i := range entries {
		if !attrsBinaryOK(entries[i].Attrs) {
			return Record{}, false, nil
		}
	}
	w := &binWriter{buf: make([]byte, 0, 48*len(entries))}
	w.uvarint(uint64(len(entries)))
	for i := range entries {
		w.str(entries[i].ID)
		w.str(entries[i].Type)
		if err := w.attrs(entries[i].Attrs); err != nil {
			return Record{}, false, err
		}
	}
	return w.record(TypeEntityMerge), true, nil
}

func binDecodeEntityMerge(rec Record) ([]ngsi.MergeEntry, error) {
	r := &binReader{p: rec.Payload, strs: rec.Strings}
	n := r.count(3)
	out := make([]ngsi.MergeEntry, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		var e ngsi.MergeEntry
		e.ID = r.str()
		e.Type = r.str()
		e.Attrs = r.attrs()
		out = append(out, e)
	}
	if r.err != nil {
		return nil, fmt.Errorf("wal: entity merge payload: %w", r.err)
	}
	return out, nil
}

func binEncodeID(t Type, id string) Record {
	w := &binWriter{buf: make([]byte, 0, 2)}
	w.str(id)
	return w.record(t)
}

func binDecodeID(rec Record) (string, error) {
	r := &binReader{p: rec.Payload, strs: rec.Strings}
	id := r.str()
	if r.err != nil {
		return "", fmt.Errorf("wal: id payload: %w", r.err)
	}
	return id, nil
}

func binEncodeSubscriptionPut(sr SubscriptionRecord) Record {
	w := &binWriter{buf: make([]byte, 0, 32)}
	w.str(sr.ID)
	w.str(sr.EntityIDPattern)
	w.str(sr.EntityType)
	w.str(sr.Owner)
	w.str(sr.Endpoint)
	w.varint(int64(sr.Throttling))
	w.uvarint(uint64(len(sr.ConditionAttrs)))
	for _, s := range sr.ConditionAttrs {
		w.str(s)
	}
	w.uvarint(uint64(len(sr.NotifyAttrs)))
	for _, s := range sr.NotifyAttrs {
		w.str(s)
	}
	return w.record(TypeSubscriptionPut)
}

func binDecodeSubscriptionPut(rec Record) (SubscriptionRecord, error) {
	r := &binReader{p: rec.Payload, strs: rec.Strings}
	var sr SubscriptionRecord
	sr.ID = r.str()
	sr.EntityIDPattern = r.str()
	sr.EntityType = r.str()
	sr.Owner = r.str()
	sr.Endpoint = r.str()
	sr.Throttling = time.Duration(r.varint())
	if n := r.count(1); n > 0 {
		sr.ConditionAttrs = make([]string, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			sr.ConditionAttrs = append(sr.ConditionAttrs, r.str())
		}
	}
	if n := r.count(1); n > 0 {
		sr.NotifyAttrs = make([]string, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			sr.NotifyAttrs = append(sr.NotifyAttrs, r.str())
		}
	}
	if r.err != nil {
		return SubscriptionRecord{}, fmt.Errorf("wal: subscription payload: %w", r.err)
	}
	return sr, nil
}

// binEncodeTelemetry packs a batch as (device, quantity, Δnanos, zone,
// float64 bits) tuples: timestamps are delta-encoded against the
// previous point, so a monotone batch costs a couple of bytes per stamp
// instead of an RFC3339 string.
func binEncodeTelemetry(batch []timeseries.BatchPoint) (Record, bool, error) {
	for i := range batch {
		t := batch[i].Point.At
		if t.IsZero() || !timeBinaryOK(t) {
			return Record{}, false, nil
		}
		v := batch[i].Point.Value
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Record{}, false, fmt.Errorf("wal: unsupported telemetry value %v", v)
		}
	}
	w := &binWriter{buf: make([]byte, 0, 16+16*len(batch))}
	w.uvarint(uint64(len(batch)))
	prev := int64(0)
	for i := range batch {
		p := &batch[i]
		w.str(p.Key.Device)
		w.str(p.Key.Quantity)
		nanos := p.Point.At.UnixNano()
		w.varint(nanos - prev)
		prev = nanos
		_, off := p.Point.At.Zone()
		w.varint(int64(off))
		w.f64(p.Point.Value)
	}
	return w.record(TypeTelemetry), true, nil
}

func binDecodeTelemetry(rec Record) ([]timeseries.BatchPoint, error) {
	r := &binReader{p: rec.Payload, strs: rec.Strings}
	n := r.count(12)
	out := make([]timeseries.BatchPoint, 0, n)
	prev := int64(0)
	for i := 0; i < n && r.err == nil; i++ {
		var bp timeseries.BatchPoint
		bp.Key.Device = r.str()
		bp.Key.Quantity = r.str()
		prev += r.varint()
		off := r.varint()
		t := time.Unix(0, prev)
		if off == 0 {
			t = t.UTC()
		} else {
			t = t.In(time.FixedZone("", int(off)))
		}
		bp.Point.At = t
		bp.Point.Value = r.f64()
		out = append(out, bp)
	}
	if r.err != nil {
		return nil, fmt.Errorf("wal: telemetry payload: %w", r.err)
	}
	return out, nil
}
