package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Pos addresses one committed record in the log: the segment index plus
// the 1-based record index within that segment. Positions are stable
// across restarts — sealed segments are immutable and every Open starts
// the committer on a fresh segment — which is what makes them usable as
// replication offsets. The zero Pos means "nothing".
type Pos struct {
	Seg uint64
	Rec uint64
}

// IsZero reports whether p addresses nothing.
func (p Pos) IsZero() bool { return p.Seg == 0 && p.Rec == 0 }

// Less orders positions: segment first, then record index.
func (p Pos) Less(q Pos) bool {
	if p.Seg != q.Seg {
		return p.Seg < q.Seg
	}
	return p.Rec < q.Rec
}

// Follows reports whether p is the position immediately after prev in a
// gap-free stream of one log: the next record of the same segment, or the
// first record of a later segment (rotation — possibly skipping truncated
// or torn-tail segment indexes). Replication uses it to detect lost
// frames on impaired transports.
func (p Pos) Follows(prev Pos) bool {
	if p.Seg == prev.Seg {
		return p.Rec == prev.Rec+1
	}
	return p.Seg > prev.Seg && p.Rec == 1
}

func (p Pos) String() string { return fmt.Sprintf("%d/%d", p.Seg, p.Rec) }

// hookEvent is one durable record awaiting commit-hook delivery.
type hookEvent struct {
	rec Record
	pos Pos
}

// CommitHook observes every record the log makes durable, in commit
// order, with its position. It runs on the committer goroutine after the
// record's fsync succeeded and strictly before the record's Pending is
// released — so a watermark sampled after any acknowledged append covers
// that append. It must not block (it stalls every commit) and must not
// call back into the Manager.
type CommitHook func(rec Record, pos Pos)

// SetCommitHook installs (or, with nil, removes) the commit hook.
// Records committed while no hook is installed are only reachable by
// reading segment files.
func (m *Manager) SetCommitHook(h CommitHook) {
	if h == nil {
		m.log.hook.Store(nil)
		return
	}
	m.log.hook.Store(&h)
}

// StartSeg returns the index of the fresh segment this Open created.
// Every record committed by this process lands at or above it; everything
// below is immutable recovery input.
func (m *Manager) StartSeg() uint64 { return m.startSeg }

// Segments returns the sorted indexes of the segment files currently on
// disk, including the active one. Sealed segments (all but the highest)
// are immutable; the set only shrinks through snapshot truncation.
func (m *Manager) Segments() ([]uint64, error) {
	return listIndexed(m.cfg.Dir, segPrefix, segSuffix)
}

// SnapshotSeq returns the boundary of the newest snapshot on disk, and
// whether one exists. A snapshot with boundary B covers every record in
// segments below B.
func (m *Manager) SnapshotSeq() (uint64, bool, error) {
	snaps, err := listIndexed(m.cfg.Dir, snapPrefix, snapSuffix)
	if err != nil {
		return 0, false, err
	}
	if len(snaps) == 0 {
		return 0, false, nil
	}
	return snaps[len(snaps)-1], true, nil
}

// SegmentPath returns the path of the segment file with the given index.
func (m *Manager) SegmentPath(idx uint64) string {
	return filepath.Join(m.cfg.Dir, segName(idx))
}

// SnapshotPath returns the path of the snapshot file with the given
// boundary.
func (m *Manager) SnapshotPath(idx uint64) string {
	return filepath.Join(m.cfg.Dir, snapName(idx))
}

// ReplayFile streams the records of one segment or snapshot file into
// apply, returning the number applied and whether reading stopped at a
// torn (truncated or corrupt) record — the expected tail shape of a
// segment after a crash. An error from apply aborts the replay and is
// returned wrapped.
func ReplayFile(path string, apply func(Record) error) (int, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	// The 8-byte magic selects the v2 frame codec. Anything else — a v1
	// file from before codec v2, an empty file, or a header torn by a
	// crash (in which case no record in the file was ever acknowledged) —
	// reads as v1, whose framing maps such tails to clean EOF or ErrTorn.
	var dec *segDecoder
	if hdr, err := br.Peek(len(segMagic)); err == nil && isV2Header(hdr) {
		if _, err := br.Discard(len(segMagic)); err != nil {
			return 0, false, err
		}
		dec = newSegDecoder()
	}
	n := 0
	for {
		var rec Record
		var err error
		if dec != nil {
			rec, err = dec.readRecord(br)
		} else {
			rec, err = readRecord(br)
		}
		if err == io.EOF {
			return n, false, nil
		}
		if err == ErrTorn {
			return n, true, nil
		}
		if err != nil {
			return n, false, err
		}
		if err := apply(rec); err != nil {
			return n, false, fmt.Errorf("wal: replay %s record %d: %w", filepath.Base(path), n, err)
		}
		n++
	}
}
