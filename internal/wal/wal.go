// Package wal is the SWAMP durability plane: a segmented, group-committed
// write-ahead log plus point-in-time snapshots, sitting under the NGSI
// entity store and the time-series engine so a swampd restart (or crash)
// no longer loses every entity, subscription and telemetry point.
//
// Writers append typed records through a bounded commit queue drained by a
// single committer goroutine; every record in a drained batch shares one
// fsync (the PR 1 batching recipe applied to disk), so N concurrent
// appenders cost ~1 fsync instead of N. Append returns a Pending whose
// Wait blocks until the record's batch is durable — stores apply the
// mutation under their shard lock, enqueue while still holding it (so log
// order matches apply order per shard), and only acknowledge the caller
// after Wait.
//
// A snapshot is a rotation boundary plus a file of ordinary records: the
// dump callback rotates the log (all prior records land in segments below
// the boundary), streams the store state as records into snapshot-<B>.snap
// (written to a temp file, fsynced, renamed), after which segments below B
// are deleted. Recovery loads the newest snapshot and replays the tail
// segments at or above its boundary, stopping at the first torn record
// (CRC per record), so a crash mid-write costs at most the unacknowledged
// suffix.
package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
)

// Defaults for the tunable knobs.
const (
	// DefaultSegmentBytes is the segment roll threshold when
	// Config.SegmentBytes is zero.
	DefaultSegmentBytes = 8 << 20
	// DefaultQueueLen bounds the commit queue when Config.QueueLen is
	// zero.
	DefaultQueueLen = 4096
)

// Config configures a Manager.
type Config struct {
	// Dir is the WAL directory (segments + snapshots). Required; created
	// if missing.
	Dir string
	// SegmentBytes is the size past which the active segment rolls
	// (default DefaultSegmentBytes).
	SegmentBytes int64
	// FsyncInterval is the group-commit coalescing window: after the
	// first record of a batch the committer keeps accumulating for up to
	// this long before fsyncing. Zero means fsync as soon as the queue
	// has been drained — batching still emerges under concurrency, with
	// no added latency when idle.
	FsyncInterval time.Duration
	// SyncEveryRecord forces one fsync per record — the group-commit
	// bench baseline. Leave false.
	SyncEveryRecord bool
	// QueueLen bounds the commit queue (default DefaultQueueLen);
	// appends past it block.
	QueueLen int
	// Metrics receives the wal.* counters; nil allocates a private
	// registry.
	Metrics *metrics.Registry
}

// RecoverStats reports what a recovery replayed.
type RecoverStats struct {
	// SnapshotBoundary is the segment boundary of the snapshot that was
	// loaded (0 when none existed).
	SnapshotBoundary uint64
	// SnapshotRecords is the number of records replayed from the
	// snapshot file.
	SnapshotRecords int
	// TailSegments / TailRecords count the log segments and records
	// replayed after the snapshot.
	TailSegments int
	TailRecords  int
	// Torn reports that at least one segment's replay stopped at a torn
	// (truncated or corrupt) record — the expected tail shape after a
	// crash mid-write. The remainder of a torn segment is skipped; later
	// segments (appended by a post-crash restart, whose writes build on
	// exactly the recovered prefix) still replay.
	Torn bool
}

// Manager owns one WAL directory: the segmented log plus its snapshots.
// Open, then Recover exactly once (before any Append), then append
// freely; Close flushes the queue and fsyncs.
type Manager struct {
	cfg Config
	log *wlog
	reg *metrics.Registry

	snapMu    sync.Mutex // serializes snapshots
	recovered bool
	startSeg  uint64 // the fresh segment this Open created; replay stops below it

	loopOnce sync.Once
	loopDone chan struct{}
	loopWG   sync.WaitGroup

	// snapIntv is the reloadable snapshot cadence in ns (<= 0 parks the
	// loop); snapPoke wakes the loop so a new cadence re-arms immediately.
	snapIntv atomic.Int64
	snapPoke chan struct{}

	cSnapshots    *metrics.Counter
	cSnapRecords  *metrics.Counter
	cSnapErrors   *metrics.Counter
	cTruncated    *metrics.Counter
	cReplayed     *metrics.Counter
	cReplayedTorn *metrics.Counter
}

// Open scans (or creates) the WAL directory and starts the committer on a
// fresh segment past everything already on disk — recovery never appends
// to a possibly-torn old segment. Call Recover before the first Append.
func Open(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("wal: Config.Dir required")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = DefaultQueueLen
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	// Drop stale temp files from an interrupted snapshot.
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	start := uint64(1)
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == tmpSuffix {
			_ = os.Remove(filepath.Join(cfg.Dir, name))
			continue
		}
		if idx, ok := parseIndexed(name, segPrefix, segSuffix); ok && idx+1 > start {
			start = idx + 1
		}
		if idx, ok := parseIndexed(name, snapPrefix, snapSuffix); ok && idx+1 > start {
			start = idx + 1
		}
	}
	l, err := openLog(cfg.Dir, start, cfg.SegmentBytes, cfg.FsyncInterval, cfg.SyncEveryRecord, cfg.QueueLen, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:           cfg,
		log:           l,
		reg:           cfg.Metrics,
		startSeg:      start,
		loopDone:      make(chan struct{}),
		snapPoke:      make(chan struct{}, 1),
		cSnapshots:    cfg.Metrics.Counter("wal.snapshots"),
		cSnapRecords:  cfg.Metrics.Counter("wal.snapshot.records"),
		cSnapErrors:   cfg.Metrics.Counter("wal.snapshot.errors"),
		cTruncated:    cfg.Metrics.Counter("wal.segments.truncated"),
		cReplayed:     cfg.Metrics.Counter("wal.replay.records"),
		cReplayedTorn: cfg.Metrics.Counter("wal.replay.torn"),
	}
	return m, nil
}

// Dir returns the WAL directory.
func (m *Manager) Dir() string { return m.cfg.Dir }

// Metrics returns the manager's registry.
func (m *Manager) Metrics() *metrics.Registry { return m.reg }

// Append enqueues one record for the next group commit. The returned
// Pending's Wait blocks until the record is durable.
func (m *Manager) Append(rec Record) *Pending { return m.log.append(rec) }

// AppendWait is Append + Wait.
func (m *Manager) AppendWait(rec Record) error { return m.log.append(rec).Wait() }

// Sync forces an fsync barrier: when it returns, every previously
// accepted append is durable.
func (m *Manager) Sync() error { return m.log.sync() }

// Close stops periodic snapshots, drains and commits every accepted
// append (flush-on-close), fsyncs and closes the active segment.
func (m *Manager) Close() error {
	m.loopOnce.Do(func() { close(m.loopDone) })
	m.loopWG.Wait()
	return m.log.close()
}

// replayFile is ReplayFile plus the manager's replay accounting.
func (m *Manager) replayFile(path string, apply func(Record) error) (int, bool, error) {
	return ReplayFile(path, func(rec Record) error {
		if err := apply(rec); err != nil {
			return err
		}
		m.cReplayed.Inc()
		return nil
	})
}

// Recover replays the newest snapshot (if any) and then every tail
// segment at or above its boundary, in order, stopping at the first torn
// record. It reads only — running it twice (or crashing during it and
// running it again) yields the same state. Call it exactly once, before
// the first Append.
func (m *Manager) Recover(apply func(Record) error) (RecoverStats, error) {
	var st RecoverStats
	if m.recovered {
		return st, fmt.Errorf("wal: Recover called twice")
	}
	m.recovered = true

	snaps, err := listIndexed(m.cfg.Dir, snapPrefix, snapSuffix)
	if err != nil {
		return st, err
	}
	if len(snaps) > 0 {
		st.SnapshotBoundary = snaps[len(snaps)-1]
		n, torn, err := m.replayFile(filepath.Join(m.cfg.Dir, snapName(st.SnapshotBoundary)), apply)
		st.SnapshotRecords = n
		if err != nil {
			return st, err
		}
		if torn {
			// Snapshots are written to a temp file and renamed, so a torn
			// snapshot is real corruption, not a crash artifact.
			return st, fmt.Errorf("wal: snapshot %d is corrupt", st.SnapshotBoundary)
		}
	}

	segs, err := listIndexed(m.cfg.Dir, segPrefix, segSuffix)
	if err != nil {
		return st, err
	}
	for _, idx := range segs {
		if idx < st.SnapshotBoundary {
			// Stale segment already covered by the snapshot — a crash
			// between snapshot rename and truncation leaves these behind.
			continue
		}
		if idx >= m.startSeg {
			break // the fresh segment this Open created
		}
		st.TailSegments++
		n, torn, err := m.replayFile(filepath.Join(m.cfg.Dir, segName(idx)), apply)
		st.TailRecords += n
		if err != nil {
			return st, err
		}
		if torn {
			// Stop at the first torn write *within this segment*: its
			// suffix was never acknowledged (or is rot — either way it is
			// gone on every recovery, deterministically). Segments after
			// it exist only if a post-crash restart appended them, and
			// that restart recovered exactly this prefix, so replaying
			// them preserves the lineage.
			st.Torn = true
			m.cReplayedTorn.Inc()
		}
	}
	return st, nil
}

// Snapshot takes one point-in-time snapshot. dump must call rotate()
// exactly once before its first sink() — typically while the dumped store
// is quiesced — so the snapshot's boundary cleanly splits "state captured
// here" from "records that will replay on top". After the snapshot file
// is durable, segments below the boundary and older snapshots are
// deleted.
func (m *Manager) Snapshot(dump func(rotate func() error, sink func(Record) error) error) error {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()

	tmp := filepath.Join(m.cfg.Dir, "snapshot"+tmpSuffix)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := bw.Write(segMagic[:]); err != nil {
		f.Close()
		os.Remove(tmp)
		m.cSnapErrors.Inc()
		return err
	}
	enc := newSegEncoder() // private intern table: snapshots decode standalone
	var boundary uint64
	rotated := false
	rotate := func() error {
		if rotated {
			return fmt.Errorf("wal: snapshot rotated twice")
		}
		seg, err := m.log.rotate()
		if err != nil {
			return err
		}
		boundary, rotated = seg, true
		return nil
	}
	var frame []byte
	records := 0
	sink := func(rec Record) error {
		if !rotated {
			return fmt.Errorf("wal: snapshot sink used before rotation")
		}
		frame = enc.appendFrame(frame[:0], rec)
		records++
		_, err := bw.Write(frame)
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		m.cSnapErrors.Inc()
		return err
	}
	if err := dump(rotate, sink); err != nil {
		return fail(err)
	}
	if !rotated {
		return fail(fmt.Errorf("wal: snapshot dump never rotated the log"))
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	final := filepath.Join(m.cfg.Dir, snapName(boundary))
	if err := os.Rename(tmp, final); err != nil {
		return fail(err)
	}
	if err := syncDir(m.cfg.Dir); err != nil {
		return fail(err)
	}
	m.cSnapshots.Inc()
	m.cSnapRecords.Add(uint64(records))

	// Truncate: everything below the boundary is covered by the snapshot.
	if segs, err := listIndexed(m.cfg.Dir, segPrefix, segSuffix); err == nil {
		for _, idx := range segs {
			if idx < boundary {
				if os.Remove(filepath.Join(m.cfg.Dir, segName(idx))) == nil {
					m.cTruncated.Inc()
				}
			}
		}
	}
	if snaps, err := listIndexed(m.cfg.Dir, snapPrefix, snapSuffix); err == nil {
		for _, idx := range snaps {
			if idx < boundary {
				_ = os.Remove(filepath.Join(m.cfg.Dir, snapName(idx)))
			}
		}
	}
	return nil
}

// StartSnapshots runs Snapshot(dump) every interval until Close. Errors
// are counted (wal.snapshot.errors) and the loop keeps going — a failed
// snapshot only delays truncation, it never loses records. The loop
// starts even when interval <= 0 (parked), so SetSnapshotInterval can
// enable periodic snapshots later.
func (m *Manager) StartSnapshots(interval time.Duration, dump func(rotate func() error, sink func(Record) error) error) {
	m.snapIntv.Store(int64(interval))
	m.loopWG.Add(1)
	go func() {
		defer m.loopWG.Done()
		t := time.NewTimer(time.Hour)
		if !t.Stop() {
			<-t.C
		}
		defer t.Stop()
		for {
			// Re-arm from the current cadence each iteration so a reload
			// takes effect at the next wakeup; <= 0 parks until poked.
			var tick <-chan time.Time
			if iv := time.Duration(m.snapIntv.Load()); iv > 0 {
				t.Reset(iv)
				tick = t.C
			}
			select {
			case <-m.loopDone:
				return
			case <-m.snapPoke:
				if tick != nil && !t.Stop() {
					<-t.C
				}
			case <-tick:
				// Errors are already counted inside Snapshot.
				_ = m.Snapshot(dump)
			}
		}
	}()
}

// SetSnapshotInterval changes the periodic-snapshot cadence at runtime:
// the loop re-arms immediately, so a shortened interval does not wait out
// the old timer. d <= 0 parks periodic snapshots (manual Snapshot calls
// still work); a later positive value resumes them.
func (m *Manager) SetSnapshotInterval(d time.Duration) {
	m.snapIntv.Store(int64(d))
	select {
	case m.snapPoke <- struct{}{}:
	default: // a poke is already pending; the loop will re-read the knob
	}
}

// SnapshotInterval returns the current periodic-snapshot cadence.
func (m *Manager) SnapshotInterval() time.Duration {
	return time.Duration(m.snapIntv.Load())
}
