package wal

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/timeseries"
)

// writeV1Segment fabricates an on-disk segment exactly as the codec-v1
// log wrote it: no magic, JSON payloads in [len][crc][type][payload]
// frames.
func writeV1Segment(t *testing.T, dir string, idx uint64, recs []Record) {
	t.Helper()
	var buf []byte
	for _, rec := range recs {
		buf = appendFrame(buf, rec)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(idx)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// jsonEncode forces the v1 JSON encoding of a typed payload.
func jsonEncode(t *testing.T, typ Type, v any) Record {
	t.Helper()
	rec, err := encode(typ, v)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func testEntity(i int, at time.Time) *ngsi.Entity {
	return &ngsi.Entity{
		ID:   fmt.Sprintf("urn:swamp:probe:%03d", i),
		Type: "SoilProbe",
		Attrs: map[string]ngsi.Attribute{
			"moisture": {Type: "Number", Value: float64(i) * 1.5, At: at},
			"status":   {Type: "Text", Value: "ok", Metadata: map[string]string{"unit": "%"}, At: at},
		},
	}
}

func testBatch(i int, at time.Time) []timeseries.BatchPoint {
	out := make([]timeseries.BatchPoint, 4)
	for j := range out {
		out[j] = timeseries.BatchPoint{
			Key:   timeseries.SeriesKey{Device: fmt.Sprintf("dev-%02d", i%8), Quantity: "soilMoisture"},
			Point: timeseries.Point{At: at.Add(time.Duration(j) * time.Second), Value: float64(i*10 + j)},
		}
	}
	return out
}

// decodeCanonical decodes a replayed record with the typed codecs and
// renders the result as JSON — a codec-independent canonical form (map
// keys sorted, timestamps RFC3339), so v1 and v2 replays of the same
// logical records compare byte-for-byte.
func decodeCanonical(t *testing.T, rec Record) string {
	t.Helper()
	var v any
	var err error
	switch rec.Type {
	case TypeEntityUpsert:
		v, err = DecodeEntityUpsert(rec)
	case TypeEntityMerge:
		v, err = DecodeEntityMerge(rec)
	case TypeEntityDelete, TypeSubscriptionDelete:
		v, err = DecodeID(rec)
	case TypeSubscriptionPut:
		v, err = DecodeSubscriptionPut(rec)
	case TypeTelemetry:
		v, err = DecodeTelemetry(rec)
	default:
		t.Fatalf("unknown type %d", rec.Type)
	}
	if err != nil {
		t.Fatalf("decode type %d: %v", rec.Type, err)
	}
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%d:%s", rec.Type, blob)
}

type collectFull struct{ recs []Record }

func (c *collectFull) apply(rec Record) error {
	c.recs = append(c.recs, Record{
		Type:    rec.Type,
		Codec:   rec.Codec,
		Payload: append([]byte(nil), rec.Payload...),
		Strings: append([]string(nil), rec.Strings...),
	})
	return nil
}

// TestCrossVersionMixedDirectoryReplay proves the acceptance contract:
// a directory holding a v1 JSON segment plus a v2 binary tail recovers
// to exactly the state a JSON-only directory recovers to.
func TestCrossVersionMixedDirectoryReplay(t *testing.T) {
	at := time.Date(2026, 8, 8, 10, 0, 0, 123456789, time.UTC)
	atZoned := at.In(time.FixedZone("", 2*3600))

	// The logical history: entities, a merge, telemetry, a subscription,
	// deletes. First half lands in a fabricated v1 segment, second half
	// is appended live (v2 binary).
	v1Recs := []Record{
		jsonEncode(t, TypeEntityUpsert, testEntity(1, at)),
		jsonEncode(t, TypeEntityUpsert, testEntity(2, atZoned)),
		jsonEncode(t, TypeTelemetry, telemetryPayload{Points: testBatch(1, at)}),
		jsonEncode(t, TypeEntityDelete, idPayload{ID: "urn:swamp:probe:001"}),
	}
	sub := SubscriptionRecord{
		ID: "sub-1", EntityIDPattern: "urn:swamp:probe:*", EntityType: "SoilProbe",
		ConditionAttrs: []string{"moisture"}, NotifyAttrs: []string{"moisture", "status"},
		Throttling: 5 * time.Second, Owner: "farmer", Endpoint: "http://cb/notify",
	}
	mustEncode := func(rec Record, err error) Record {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	v2Recs := []Record{
		mustEncode(EncodeEntityUpsert(testEntity(3, atZoned))),
		mustEncode(EncodeEntityMerge([]ngsi.MergeEntry{
			{ID: "urn:swamp:probe:002", Type: "SoilProbe", Attrs: testEntity(2, at).Attrs},
		})),
		mustEncode(EncodeTelemetry(testBatch(2, atZoned))),
		mustEncode(EncodeSubscriptionPut(sub)),
		mustEncode(EncodeSubscriptionDelete("sub-1")),
	}

	// Mixed directory: v1 segment 1, then a live manager appends v2.
	mixed := t.TempDir()
	writeV1Segment(t, mixed, 1, v1Recs)
	m := openTest(t, mixed)
	if _, err := m.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for _, rec := range v2Recs {
		if rec.Codec != CodecBinary {
			t.Fatalf("type %d did not binary-encode", rec.Type)
		}
		if err := m.AppendWait(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// JSON-only twin: the same logical records, all as v1 JSON frames.
	jsonOnly := t.TempDir()
	twin := []Record{
		jsonEncode(t, TypeEntityUpsert, testEntity(3, atZoned)),
		jsonEncode(t, TypeEntityMerge, mergePayload{Entries: []mergeEntry{
			{ID: "urn:swamp:probe:002", Type: "SoilProbe", Attrs: testEntity(2, at).Attrs},
		}}),
		jsonEncode(t, TypeTelemetry, telemetryPayload{Points: testBatch(2, atZoned)}),
		jsonEncode(t, TypeSubscriptionPut, sub),
		jsonEncode(t, TypeSubscriptionDelete, idPayload{ID: "sub-1"}),
	}
	writeV1Segment(t, jsonOnly, 1, append(append([]Record(nil), v1Recs...), twin...))

	var got, want collectFull
	mg := openTest(t, mixed)
	if _, err := mg.Recover(got.apply); err != nil {
		t.Fatal(err)
	}
	mg.Close()
	mw := openTest(t, jsonOnly)
	if _, err := mw.Recover(want.apply); err != nil {
		t.Fatal(err)
	}
	mw.Close()

	if len(got.recs) != len(want.recs) {
		t.Fatalf("mixed replayed %d records, json-only %d", len(got.recs), len(want.recs))
	}
	for i := range got.recs {
		g, w := decodeCanonical(t, got.recs[i]), decodeCanonical(t, want.recs[i])
		if g != w {
			t.Fatalf("record %d differs:\n  mixed:     %s\n  json-only: %s", i, g, w)
		}
	}
}

// TestV1SnapshotReplays proves old snapshot files (no magic, JSON
// frames) still load.
func TestV1SnapshotReplays(t *testing.T) {
	dir := t.TempDir()
	recs := []Record{
		jsonEncode(t, TypeEntityUpsert, testEntity(7, time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))),
		jsonEncode(t, TypeEntityDelete, idPayload{ID: "urn:swamp:probe:001"}),
	}
	var buf []byte
	for _, rec := range recs {
		buf = appendFrame(buf, rec)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName(3)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	var c collectFull
	m := openTest(t, dir)
	st, err := m.Recover(c.apply)
	m.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotBoundary != 3 || st.SnapshotRecords != 2 || len(c.recs) != 2 {
		t.Fatalf("stats=%+v records=%d", st, len(c.recs))
	}
	if _, err := DecodeEntityUpsert(c.recs[0]); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryTornRecords covers crash tails at the v2 framing layer: a
// truncated final frame, a truncated segment header, and a corrupt
// string reference (CRC-valid garbage must fail loudly, not silently
// truncate).
func TestBinaryTornRecords(t *testing.T) {
	at := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	build := func(t *testing.T) (string, int) {
		dir := t.TempDir()
		m := openTest(t, dir)
		if _, err := m.Recover(func(Record) error { return nil }); err != nil {
			t.Fatal(err)
		}
		const n = 10
		for i := 0; i < n; i++ {
			rec, err := EncodeTelemetry(testBatch(i, at.Add(time.Duration(i)*time.Minute)))
			if err != nil {
				t.Fatal(err)
			}
			if err := m.AppendWait(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, n
	}

	t.Run("truncated final frame", func(t *testing.T) {
		dir, n := build(t)
		seg := lastNonEmptySegment(t, dir)
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, fi.Size()-7); err != nil {
			t.Fatal(err)
		}
		recs, st := recoverAll(t, dir)
		if len(recs) != n-1 || !st.Torn {
			t.Fatalf("recovered %d (torn=%v), want %d torn", len(recs), st.Torn, n-1)
		}
	})

	t.Run("truncated header", func(t *testing.T) {
		dir, _ := build(t)
		seg := lastNonEmptySegment(t, dir)
		if err := os.Truncate(seg, 5); err != nil { // mid-magic
			t.Fatal(err)
		}
		recs, st := recoverAll(t, dir)
		if len(recs) != 0 || !st.Torn {
			t.Fatalf("recovered %d (torn=%v), want 0 torn", len(recs), st.Torn)
		}
	})

	t.Run("corrupt string ref fails loudly", func(t *testing.T) {
		dir, _ := build(t)
		seg := lastNonEmptySegment(t, dir)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Re-frame the first record with a dangling back-reference: the
		// CRC is valid, so this is not a crash artifact and recovery
		// must surface an error instead of dropping acknowledged data.
		bad := (&segEncoder{ids: map[string]uint32{"never-defined": 41}}).appendFrame(nil,
			Record{Type: TypeEntityDelete, Codec: CodecBinary, Strings: []string{"never-defined"}, Payload: []byte{0}})
		if err := os.WriteFile(seg, append(append(append([]byte(nil), data[:len(segMagic)]...), bad...), data[len(segMagic):]...), 0o644); err != nil {
			t.Fatal(err)
		}
		m := openTest(t, dir)
		defer m.Close()
		_, err = m.Recover(func(Record) error { return nil })
		if err == nil {
			t.Fatal("recovery of a corrupt (CRC-valid) frame should fail")
		}
	})
}

// TestInternRoundTripFuzz hammers the per-segment interning tables with
// randomized records across forced rotations: every decoded record must
// canonically equal its input, whichever segment (and intern table) it
// landed in.
func TestInternRoundTripFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()
	m := openTest(t, dir, func(c *Config) { c.SegmentBytes = 4 << 10 }) // force many rotations
	if _, err := m.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}

	namePool := []string{"moisture", "temperature", "status", "ph", "conductivity"}
	valPool := []any{
		nil, true, false, "wet", 3.25, 7,
		map[string]any{"lat": 1.5, "lon": -2.25},
		[]any{"a", 2.0},
		json.Number("12.5"),
	}
	base := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)

	var want []string
	appendRec := func(rec Record, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, decodeCanonical(t, rec))
		if err := m.AppendWait(rec); err != nil {
			t.Fatal(err)
		}
	}
	const n = 400
	for i := 0; i < n; i++ {
		at := base.Add(time.Duration(rng.Intn(1_000_000)) * time.Millisecond)
		switch rng.Intn(4) {
		case 0:
			e := &ngsi.Entity{
				ID:    fmt.Sprintf("urn:fuzz:%d", rng.Intn(50)),
				Type:  "SoilProbe",
				Attrs: map[string]ngsi.Attribute{},
			}
			for j := 0; j < 1+rng.Intn(4); j++ {
				a := ngsi.Attribute{Type: "Number", Value: valPool[rng.Intn(len(valPool))], At: at}
				if rng.Intn(3) == 0 {
					a.Metadata = map[string]string{"unit": namePool[rng.Intn(len(namePool))]}
				}
				if rng.Intn(5) == 0 {
					a.At = time.Time{} // zero-time flag path
				}
				e.Attrs[namePool[rng.Intn(len(namePool))]] = a
			}
			appendRec(EncodeEntityUpsert(e))
		case 1:
			entries := make([]ngsi.MergeEntry, 1+rng.Intn(3))
			for j := range entries {
				entries[j] = ngsi.MergeEntry{
					ID:   fmt.Sprintf("urn:fuzz:%d", rng.Intn(50)),
					Type: "SoilProbe",
					Attrs: map[string]ngsi.Attribute{
						namePool[rng.Intn(len(namePool))]: {Type: "Number", Value: rng.Float64(), At: at},
					},
				}
			}
			appendRec(EncodeEntityMerge(entries))
		case 2:
			batch := make([]timeseries.BatchPoint, 1+rng.Intn(8))
			for j := range batch {
				batch[j] = timeseries.BatchPoint{
					Key: timeseries.SeriesKey{
						Device:   fmt.Sprintf("dev-%d", rng.Intn(10)),
						Quantity: namePool[rng.Intn(len(namePool))],
					},
					// Out-of-order deltas exercise negative varints.
					Point: timeseries.Point{At: base.Add(time.Duration(rng.Intn(1000)-500) * time.Second), Value: rng.NormFloat64()},
				}
			}
			appendRec(EncodeTelemetry(batch))
		default:
			appendRec(EncodeEntityDelete(fmt.Sprintf("urn:fuzz:%d", rng.Intn(50))))
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listIndexed(dir, segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments, got %d — rotation (and intern reset) not exercised", len(segs))
	}

	var c collectFull
	mg := openTest(t, dir)
	if _, err := mg.Recover(c.apply); err != nil {
		t.Fatal(err)
	}
	mg.Close()
	if len(c.recs) != n {
		t.Fatalf("recovered %d records, want %d", len(c.recs), n)
	}
	for i, rec := range c.recs {
		if got := decodeCanonical(t, rec); got != want[i] {
			t.Fatalf("record %d round-trip mismatch:\n  got:  %s\n  want: %s", i, got, want[i])
		}
	}
}

// TestJSONFallbackForExoticTimes: timestamps outside the unix-nano range
// take the per-record JSON fallback and still round-trip.
func TestJSONFallbackForExoticTimes(t *testing.T) {
	far := time.Date(2500, 1, 1, 0, 0, 0, 0, time.UTC) // beyond unix-nano range
	e := testEntity(9, far)
	rec, err := EncodeEntityUpsert(e)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Codec != CodecJSON {
		t.Fatalf("codec = %d, want JSON fallback", rec.Codec)
	}
	got, err := DecodeEntityUpsert(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Attrs["moisture"].At.Equal(far) {
		t.Fatalf("At = %v, want %v", got.Attrs["moisture"].At, far)
	}

	batch := testBatch(1, far)
	rec, err = EncodeTelemetry(batch)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Codec != CodecJSON {
		t.Fatalf("telemetry codec = %d, want JSON fallback", rec.Codec)
	}
	pts, err := DecodeTelemetry(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts[0].Key, batch[0].Key) || !pts[0].Point.At.Equal(batch[0].Point.At) {
		t.Fatal("telemetry fallback round-trip mismatch")
	}
}
