package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// collectRecords is the counting apply used throughout: it decodes
// nothing, just remembers what replay delivered.
type collectRecords struct {
	recs []Record
}

func (c *collectRecords) apply(rec Record) error {
	cp := Record{Type: rec.Type, Payload: append([]byte(nil), rec.Payload...)}
	c.recs = append(c.recs, cp)
	return nil
}

func testRecord(i int) Record {
	return Record{Type: TypeEntityDelete, Payload: []byte(fmt.Sprintf(`{"id":"urn:test:%06d"}`, i))}
}

func openTest(t *testing.T, dir string, opts ...func(*Config)) *Manager {
	t.Helper()
	cfg := Config{Dir: dir}
	for _, o := range opts {
		o(&cfg)
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func recoverAll(t *testing.T, dir string) ([]Record, RecoverStats) {
	t.Helper()
	m := openTest(t, dir)
	defer m.Close()
	var c collectRecords
	st, err := m.Recover(c.apply)
	if err != nil {
		t.Fatal(err)
	}
	return c.recs, st
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir)
	if _, err := m.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := m.AppendWait(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	recs, st := recoverAll(t, dir)
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
	if st.Torn || st.SnapshotRecords != 0 || st.TailRecords != n {
		t.Fatalf("stats = %+v", st)
	}
	for i, rec := range recs {
		want := testRecord(i)
		if rec.Type != want.Type || string(rec.Payload) != string(want.Payload) {
			t.Fatalf("record %d = %q", i, rec.Payload)
		}
	}
}

func TestConcurrentAppendsGroupCommit(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir)
	if _, err := m.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	const workers, per = 16, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := m.AppendWait(testRecord(w*per + i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	fsyncs := m.Metrics().Counter("wal.fsync").Value()
	recs := m.Metrics().Counter("wal.append.records").Value()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if recs != workers*per {
		t.Fatalf("appended %d records", recs)
	}
	// The whole point of group commit: far fewer fsyncs than records.
	if fsyncs >= recs {
		t.Fatalf("no batching: %d fsyncs for %d records", fsyncs, recs)
	}

	got, _ := recoverAll(t, dir)
	if len(got) != workers*per {
		t.Fatalf("recovered %d records, want %d", len(got), workers*per)
	}
}

// lastSegment returns the path of the highest-numbered segment with
// content.
func lastNonEmptySegment(t *testing.T, dir string) string {
	t.Helper()
	idxs, err := listIndexed(dir, segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(idxs) - 1; i >= 0; i-- {
		p := filepath.Join(dir, segName(idxs[i]))
		if fi, err := os.Stat(p); err == nil && fi.Size() > 0 {
			return p
		}
	}
	t.Fatal("no non-empty segment")
	return ""
}

func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir)
	if _, err := m.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := m.AppendWait(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash simulation: chop a few bytes off the final record.
	seg := lastNonEmptySegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	recs, st := recoverAll(t, dir)
	if len(recs) != n-1 {
		t.Fatalf("recovered %d records, want %d (torn tail dropped)", len(recs), n-1)
	}
	if !st.Torn {
		t.Fatalf("stats should report torn tail: %+v", st)
	}

	// The log stays appendable after a torn tail: Open starts a fresh
	// segment, and subsequent recoveries see old prefix + new records.
	m2 := openTest(t, dir)
	if _, err := m2.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := m2.AppendWait(testRecord(100 + i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st = recoverAll(t, dir)
	if len(recs) != n-1+5 {
		t.Fatalf("after re-append: recovered %d records, want %d", len(recs), n-1+5)
	}
	if !st.Torn {
		t.Fatal("torn marker lost after re-append")
	}
	// The post-restart records must replay after the torn prefix.
	if string(recs[len(recs)-1].Payload) != string(testRecord(104).Payload) {
		t.Fatalf("last record = %q", recs[len(recs)-1].Payload)
	}
}

func TestTornRecordCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir)
	if _, err := m.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := m.AppendWait(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the last record's payload.
	seg := lastNonEmptySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, st := recoverAll(t, dir)
	if len(recs) != n-1 || !st.Torn {
		t.Fatalf("recovered %d records (torn=%v), want %d with torn", len(recs), st.Torn, n-1)
	}
}

func TestEmptySegmentTolerated(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir)
	if _, err := m.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := m.AppendWait(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash right after rotation leaves a zero-length segment. Also the
	// fresh segment every Open creates is empty when nothing was written.
	if err := os.WriteFile(filepath.Join(dir, segName(500)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, st := recoverAll(t, dir)
	if len(recs) != 3 || st.Torn {
		t.Fatalf("recovered %d records (torn=%v), want 3 clean", len(recs), st.Torn)
	}
}

func TestRotationBySegmentSize(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir, func(c *Config) { c.SegmentBytes = 256 })
	if _, err := m.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := m.AppendWait(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	idxs, err := listIndexed(dir, segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(idxs))
	}
	recs, _ := recoverAll(t, dir)
	if len(recs) != n {
		t.Fatalf("recovered %d records across segments, want %d", len(recs), n)
	}
}

// snapshotHalf snapshots with a dump that emits `emit` records.
func snapshotN(t *testing.T, m *Manager, emit int) {
	t.Helper()
	err := m.Snapshot(func(rotate func() error, sink func(Record) error) error {
		if err := rotate(); err != nil {
			return err
		}
		for i := 0; i < emit; i++ {
			if err := sink(testRecord(1000 + i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir, func(c *Config) { c.SegmentBytes = 256 })
	if _, err := m.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := m.AppendWait(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	snapshotN(t, m, 7) // pretend the state compacted to 7 records
	// Tail records after the snapshot boundary.
	for i := 0; i < 5; i++ {
		if err := m.AppendWait(testRecord(2000 + i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Pre-snapshot segments must be gone.
	snaps, err := listIndexed(dir, snapPrefix, snapSuffix)
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshots on disk: %v (%v)", snaps, err)
	}
	segs, err := listIndexed(dir, segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range segs {
		if idx < snaps[0] {
			t.Fatalf("segment %d below boundary %d not truncated", idx, snaps[0])
		}
	}

	recs, st := recoverAll(t, dir)
	if st.SnapshotRecords != 7 || st.TailRecords != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if len(recs) != 12 {
		t.Fatalf("recovered %d records, want 12", len(recs))
	}
	// Snapshot records replay before tail records.
	if string(recs[0].Payload) != string(testRecord(1000).Payload) ||
		string(recs[7].Payload) != string(testRecord(2000).Payload) {
		t.Fatalf("replay order wrong: %q ... %q", recs[0].Payload, recs[7].Payload)
	}
}

func TestSnapshotNewerThanStaleTail(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir)
	if _, err := m.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := m.AppendWait(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	snapshotN(t, m, 4)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash between snapshot rename and truncation: re-create
	// a stale pre-boundary segment holding records that must NOT replay.
	snaps, err := listIndexed(dir, snapPrefix, snapSuffix)
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshots: %v (%v)", snaps, err)
	}
	var stale []byte
	for i := 0; i < 6; i++ {
		stale = appendFrame(stale, testRecord(9000+i))
	}
	if err := os.WriteFile(filepath.Join(dir, segName(snaps[0]-1)), stale, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, st := recoverAll(t, dir)
	if st.SnapshotRecords != 4 || st.TailRecords != 0 || st.Torn {
		t.Fatalf("stats = %+v", st)
	}
	for _, rec := range recs {
		if string(rec.Payload) == string(testRecord(9000).Payload) {
			t.Fatal("stale pre-snapshot segment was replayed")
		}
	}
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want the snapshot's 4", len(recs))
	}
}

func TestRecoverIsIdempotentAndReadOnly(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir)
	if _, err := m.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := m.AppendWait(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	snapshotN(t, m, 3)
	for i := 0; i < 4; i++ {
		if err := m.AppendWait(testRecord(3000 + i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	sizesBefore := dirSizes(t, dir)
	first, st1 := recoverAll(t, dir)
	second, st2 := recoverAll(t, dir)
	if len(first) != len(second) {
		t.Fatalf("recover not idempotent: %d vs %d records", len(first), len(second))
	}
	for i := range first {
		if string(first[i].Payload) != string(second[i].Payload) {
			t.Fatalf("record %d differs between recoveries", i)
		}
	}
	if st1.SnapshotRecords != st2.SnapshotRecords || st1.TailRecords != st2.TailRecords {
		t.Fatalf("stats differ: %+v vs %+v", st1, st2)
	}
	// Recovery must not rewrite any pre-existing file (the throwaway
	// fresh segments each Open creates are new files).
	for name, size := range sizesBefore {
		after := dirSizes(t, dir)
		if got, ok := after[name]; ok && got != size {
			t.Fatalf("recovery modified %s: %d -> %d bytes", name, size, got)
		}
	}
}

func dirSizes(t *testing.T, dir string) map[string]int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int64, len(entries))
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = fi.Size()
	}
	return out
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir)
	if _, err := m.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendWait(testRecord(1)); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}

func TestSnapshotDuringConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir, func(c *Config) { c.SegmentBytes = 4 << 10 })
	if _, err := m.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := m.AppendWait(testRecord(w*per + i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Interleave snapshots with the append storm.
	for i := 0; i < 5; i++ {
		snapshotN(t, m, 2)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything appended after the last snapshot boundary must recover;
	// records before it were compacted into the snapshot's stand-in
	// records. We can at least assert recovery is clean and ends with a
	// consistent stream.
	_, st := recoverAll(t, dir)
	if st.Torn {
		t.Fatalf("clean shutdown must not look torn: %+v", st)
	}
	if st.SnapshotRecords != 2 {
		t.Fatalf("latest snapshot had %d records, want 2", st.SnapshotRecords)
	}
}

// TestWriteFailureLatchesLog forces a write failure (the active segment
// file is closed out from under the committer, failing the next write
// the way ENOSPC would) and asserts the log latches: every subsequent
// append fails — appending past a possibly-torn frame would acknowledge
// records replay cannot reach — and Close surfaces the latched error.
func TestWriteFailureLatchesLog(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir)
	if _, err := m.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendWait(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	// The committer is idle (the previous append's Wait returned and no
	// rotation has happened), so closing its file is race-free.
	if err := m.log.f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendWait(testRecord(1)); err == nil {
		t.Fatal("append after write failure was acknowledged")
	}
	for i := 2; i < 5; i++ {
		if err := m.AppendWait(testRecord(i)); err == nil {
			t.Fatalf("append %d after latched failure was acknowledged", i)
		}
	}
	if err := m.Sync(); err == nil {
		t.Fatal("sync on a failed log reported success")
	}
	if err := m.Close(); err == nil {
		t.Fatal("close on a failed log reported success")
	}
	// Exactly the acknowledged prefix recovers.
	recs, _ := recoverAll(t, dir)
	if len(recs) != 1 {
		t.Fatalf("recovered %d records, want 1", len(recs))
	}
}

// failingReader returns a real I/O error mid-stream.
type failingReader struct{ err error }

func (r failingReader) Read([]byte) (int, error) { return 0, r.err }

// TestReadRecordPropagatesIOErrors: only truncation is a torn record; a
// real read error must surface, not end replay as a clean crash tail
// (which would silently drop every acknowledged record after it).
func TestReadRecordPropagatesIOErrors(t *testing.T) {
	werr := fmt.Errorf("input/output error")
	if _, err := readRecord(failingReader{err: werr}); err != werr {
		t.Fatalf("readRecord error = %v, want %v", err, werr)
	}
}
