package wal

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestSetSnapshotIntervalEnablesParkedLoop starts the snapshot loop
// parked (negative interval) and enables it at runtime — the reload path
// that turns periodic snapshots on without a restart.
func TestSetSnapshotIntervalEnablesParkedLoop(t *testing.T) {
	m := openTest(t, t.TempDir())
	if _, err := m.Recover(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := m.AppendWait(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}

	var dumps atomic.Int64
	m.StartSnapshots(-1, func(rotate func() error, sink func(Record) error) error {
		dumps.Add(1)
		return rotate()
	})
	if m.SnapshotInterval() != -1 {
		t.Fatalf("interval = %v", m.SnapshotInterval())
	}
	time.Sleep(20 * time.Millisecond)
	if dumps.Load() != 0 {
		t.Fatal("parked loop took a snapshot")
	}

	m.SetSnapshotInterval(2 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for dumps.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if dumps.Load() == 0 {
		t.Fatal("enabled loop never snapshotted")
	}

	// Park again: the cadence change must take effect promptly, not wait
	// out a previously armed timer.
	m.SetSnapshotInterval(-1)
	time.Sleep(10 * time.Millisecond)
	base := dumps.Load()
	time.Sleep(30 * time.Millisecond)
	if dumps.Load() > base {
		t.Fatalf("re-parked loop kept snapshotting (%d -> %d)", base, dumps.Load())
	}
}
