package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
)

// ErrClosed is returned for appends against a closed log.
var ErrClosed = errors.New("wal: closed")

// On-disk names: segments are wal-<seq>.log, snapshots snapshot-<seq>.snap.
// A snapshot named with boundary B covers every record in segments < B.
const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snapshot-"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

func segName(idx uint64) string  { return fmt.Sprintf("%s%016d%s", segPrefix, idx, segSuffix) }
func snapName(idx uint64) string { return fmt.Sprintf("%s%016d%s", snapPrefix, idx, snapSuffix) }

// parseIndexed extracts the sequence number from an indexed file name.
func parseIndexed(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
	return n, err == nil
}

// listIndexed returns the sorted sequence numbers of dir entries with the
// given prefix/suffix.
func listIndexed(dir, prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		if idx, ok := parseIndexed(e.Name(), prefix, suffix); ok {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// syncDir fsyncs a directory so renames and creates in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// controlOp marks a Pending as a committer control request rather than a
// record append.
type controlOp uint8

const (
	ctlNone controlOp = iota
	ctlSync
	ctlRotate
)

// Pending is the durability handle of one enqueued append: Wait blocks
// until the record's group commit has fsynced (or failed).
type Pending struct {
	rec  Record
	ctl  controlOp
	done chan struct{}
	err  error
	seg  uint64 // rotation result: the new active segment index
}

// Wait blocks until the record is durable and returns the commit error.
func (p *Pending) Wait() error {
	<-p.done
	return p.err
}

// failedPending builds an already-released Pending carrying err.
func failedPending(err error) *Pending {
	p := &Pending{done: make(chan struct{}), err: err}
	close(p.done)
	return p
}

// wlog is the segmented append log. All file state (active segment, size)
// belongs to the single committer goroutine; callers interact only
// through the commit queue.
type wlog struct {
	dir           string
	segmentBytes  int64
	fsyncInterval time.Duration
	syncEvery     bool
	maxBatch      int

	queue chan *Pending
	done  chan struct{}
	wg    sync.WaitGroup

	qmu    sync.RWMutex
	closed bool

	// Committer-goroutine state.
	f    *os.File
	seg  uint64
	size int64
	// enc frames records for the active segment and owns its string
	// intern table; reset on every rotation so each segment decodes
	// standalone.
	enc *segEncoder
	// segRec counts records written to the active segment; a record's
	// position is (seg, segRec) with segRec 1-based, so positions are
	// stable across restarts: sealed segments are immutable and every
	// process appends to a fresh segment.
	segRec uint64
	// hooked accumulates (record, position) pairs of the current batch;
	// after the batch's fsync succeeds — and before any Pending is
	// released — the commit hook observes them. That ordering is what
	// lets a replication watermark taken after an acknowledged append
	// always cover that append.
	hooked []hookEvent
	hook   atomic.Pointer[CommitHook]
	// fatal latches the first write/fsync/rotation failure. Once set,
	// every subsequent batch fails without touching the file: a failed
	// write may have left a torn frame mid-segment (records appended
	// after it would be acknowledged yet unreachable by replay, which
	// stops at the first torn frame), and after a failed fsync the
	// kernel may have dropped the dirty pages — a later successful
	// fsync proves nothing about them.
	fatal error

	cRecords   *metrics.Counter
	cBytes     *metrics.Counter
	cFsyncs    *metrics.Counter
	cRotations *metrics.Counter
	gSegment   *metrics.Gauge
}

// createSegment creates (exclusively) the segment file for idx, writes
// the v2 header and makes the directory entry durable. The magic is not
// fsynced on its own: the first group commit's fsync covers it, and a
// torn header means no record in the segment was ever acknowledged.
func createSegment(dir string, idx uint64) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, segName(idx)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// openLog starts the committer on a fresh segment with index startSeg.
func openLog(dir string, startSeg uint64, segmentBytes int64, fsyncInterval time.Duration, syncEvery bool, queueLen int, reg *metrics.Registry) (*wlog, error) {
	f, err := createSegment(dir, startSeg)
	if err != nil {
		return nil, err
	}
	l := &wlog{
		dir:           dir,
		segmentBytes:  segmentBytes,
		fsyncInterval: fsyncInterval,
		syncEvery:     syncEvery,
		maxBatch:      4096,
		queue:         make(chan *Pending, queueLen),
		done:          make(chan struct{}),
		f:             f,
		seg:           startSeg,
		size:          int64(len(segMagic)),
		enc:           newSegEncoder(),
		cRecords:      reg.Counter("wal.append.records"),
		cBytes:        reg.Counter("wal.append.bytes"),
		cFsyncs:       reg.Counter("wal.fsync"),
		cRotations:    reg.Counter("wal.rotations"),
		gSegment:      reg.Gauge("wal.segment.active"),
	}
	l.gSegment.Set(float64(startSeg))
	l.wg.Add(1)
	go l.run()
	return l, nil
}

// enqueue submits a Pending, returning an already-failed handle when the
// log is closed. The RLock makes close() a barrier: once close holds the
// write lock, no sender is in flight, so draining the queue drains
// everything that was ever accepted.
func (l *wlog) enqueue(p *Pending) *Pending {
	l.qmu.RLock()
	if l.closed {
		l.qmu.RUnlock()
		return failedPending(ErrClosed)
	}
	l.queue <- p
	l.qmu.RUnlock()
	return p
}

// append enqueues one record for the next group commit. Oversized
// records are rejected up front: writing one would be acknowledged but
// replay as torn (readRecord bounds allocations at MaxRecordBytes),
// silently truncating recovery of that segment.
func (l *wlog) append(rec Record) *Pending {
	if n := maxBodyBytes(rec); n > MaxRecordBytes {
		return failedPending(fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", n))
	}
	return l.enqueue(&Pending{rec: rec, done: make(chan struct{})})
}

// sync enqueues an fsync barrier and waits for it.
func (l *wlog) sync() error {
	return l.enqueue(&Pending{ctl: ctlSync, done: make(chan struct{})}).Wait()
}

// rotate seals the active segment and starts a new one, returning the new
// segment's index. Every record enqueued before rotate lands in segments
// below the returned index; every later one lands at or above it — the
// boundary snapshots are named after.
func (l *wlog) rotate() (uint64, error) {
	p := l.enqueue(&Pending{ctl: ctlRotate, done: make(chan struct{})})
	err := p.Wait()
	return p.seg, err
}

// close drains the queue (group-committing everything accepted so far),
// fsyncs and closes the active segment.
func (l *wlog) close() error {
	l.qmu.Lock()
	if l.closed {
		l.qmu.Unlock()
		return nil
	}
	l.closed = true
	l.qmu.Unlock()
	close(l.done)
	l.wg.Wait()
	if l.fatal != nil {
		// The file may already be closed (failed rotation) and its
		// durability is unknown either way; surface the latched error.
		l.f.Close()
		return l.fatal
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// run is the committer: it drains the queue into group commits — one
// fsync per batch, however many appenders are blocked on it.
func (l *wlog) run() {
	defer l.wg.Done()
	var buf []byte
	batch := make([]*Pending, 0, 64)
	for {
		select {
		case p := <-l.queue:
			batch = l.collect(append(batch[:0], p), true)
			l.commit(batch, &buf)
		case <-l.done:
			for {
				select {
				case p := <-l.queue:
					batch = l.collect(append(batch[:0], p), false)
					l.commit(batch, &buf)
				default:
					return
				}
			}
		}
	}
}

// collect gathers everything immediately available (bounded by maxBatch)
// and — when a coalescing window is configured and timed is true — keeps
// accumulating until the window elapses. This is the group-commit lever:
// every record in the batch shares one fsync. Control ops cut the window
// short: a sync barrier is pure added latency if coalesced, and a
// rotation may be holding the snapshot's store-wide freeze — waiting out
// the window there would stall every append for its duration.
func (l *wlog) collect(batch []*Pending, timed bool) []*Pending {
	hasCtl := false
	for _, p := range batch {
		if p.ctl != ctlNone {
			hasCtl = true
		}
	}
	for len(batch) < l.maxBatch {
		select {
		case p := <-l.queue:
			if p.ctl != ctlNone {
				hasCtl = true
			}
			batch = append(batch, p)
		default:
			if timed && !hasCtl && l.fsyncInterval > 0 && !l.syncEvery {
				t := time.NewTimer(l.fsyncInterval)
				for len(batch) < l.maxBatch {
					select {
					case p := <-l.queue:
						batch = append(batch, p)
						if p.ctl != ctlNone {
							t.Stop()
							return batch
						}
					case <-t.C:
						return batch
					}
				}
				t.Stop()
			}
			return batch
		}
	}
	return batch
}

// commit writes a batch, fsyncs once (or per record in syncEvery mode),
// then releases every waiter. On error the whole batch is failed — some
// prefix may in fact be durable, but reporting failure for a durable
// record is safe (callers treat it as not acknowledged) — and the error
// latches (see wlog.fatal): the log refuses all further work rather
// than acknowledge records it cannot promise to recover.
func (l *wlog) commit(batch []*Pending, bufp *[]byte) {
	if l.fatal != nil {
		for _, p := range batch {
			p.err = l.fatal
			close(p.done)
		}
		return
	}
	hook := l.hook.Load()
	var err error
	dirty := false
	flush := func() {
		if err == nil && dirty {
			err = l.f.Sync()
			l.cFsyncs.Inc()
			dirty = false
		}
	}
	for _, p := range batch {
		if err != nil {
			p.err = err
			continue
		}
		switch p.ctl {
		case ctlSync:
			flush()
			p.err = err
		case ctlRotate:
			flush()
			if err == nil {
				err = l.rotateFile()
			}
			p.seg, p.err = l.seg, err
		default:
			// The roll decision comes before encoding: framing interns
			// the record's strings into the active segment's table, so a
			// frame must never be encoded against one segment and written
			// to the next. maxBodyBytes over-estimates (it assumes every
			// string is an inline definition), which only rolls slightly
			// early.
			if l.size > int64(len(segMagic)) && l.size+int64(frameHeader+maxBodyBytes(p.rec)) > l.segmentBytes {
				flush()
				if err == nil {
					err = l.rotateFile()
				}
			}
			if err == nil {
				*bufp = l.enc.appendFrame((*bufp)[:0], p.rec)
				frame := *bufp
				_, werr := l.f.Write(frame)
				err = werr
				if werr == nil {
					l.size += int64(len(frame))
					l.segRec++
					if hook != nil {
						l.hooked = append(l.hooked, hookEvent{p.rec, Pos{Seg: l.seg, Rec: l.segRec}})
					}
					dirty = true
					l.cRecords.Inc()
					l.cBytes.Add(uint64(len(frame)))
					if l.syncEvery {
						flush()
					}
				}
			}
			p.err = err
		}
	}
	flush()
	if err != nil {
		l.fatal = fmt.Errorf("wal: log failed, rejecting further appends: %w", err)
	}
	if hook != nil && err == nil {
		for _, ev := range l.hooked {
			(*hook)(ev.rec, ev.pos)
		}
	}
	l.hooked = l.hooked[:0]
	for _, p := range batch {
		if p.err == nil {
			p.err = err
		}
		close(p.done)
	}
}

// rotateFile seals the active segment and opens the next. Committer
// goroutine only.
func (l *wlog) rotateFile() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	f, err := createSegment(l.dir, l.seg+1)
	if err != nil {
		return err
	}
	l.seg++
	l.f, l.size = f, int64(len(segMagic))
	l.segRec = 0
	l.enc.reset()
	l.cRotations.Inc()
	l.gSegment.Set(float64(l.seg))
	return nil
}
