package wal

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/timeseries"
)

// Typed record codecs. Encoders emit the compact CodecBinary bodies
// (see binary.go) and fall back to the v1 JSON payloads per record for
// the shapes binary cannot carry — timestamps outside the unix-nano
// range, zero telemetry stamps. Decoders dispatch on Record.Codec, so
// v1 segments and snapshots replay unchanged. One caveat is shared by
// both codecs: integer attribute values round-trip as float64, which
// ngsi.Attribute.Float already treats as equivalent.

// SubscriptionRecord is the declarative, durable slice of a webhook
// subscription: everything needed to rebuild it on recovery, including
// the callback endpoint its Notifier was bound to. In-process
// subscriptions (fog sync, cloud ingest, anomaly feed) are platform
// wiring re-created on startup and are never journaled.
type SubscriptionRecord struct {
	ID              string        `json:"id"`
	EntityIDPattern string        `json:"pattern"`
	EntityType      string        `json:"entityType,omitempty"`
	ConditionAttrs  []string      `json:"conditionAttrs,omitempty"`
	NotifyAttrs     []string      `json:"notifyAttrs,omitempty"`
	Throttling      time.Duration `json:"throttling,omitempty"`
	Owner           string        `json:"owner,omitempty"`
	Endpoint        string        `json:"endpoint"`
}

type mergePayload struct {
	Entries []mergeEntry `json:"entries"`
}

type mergeEntry struct {
	ID    string                    `json:"id"`
	Type  string                    `json:"type"`
	Attrs map[string]ngsi.Attribute `json:"attrs"`
}

type idPayload struct {
	ID string `json:"id"`
}

type telemetryPayload struct {
	Points []timeseries.BatchPoint `json:"points"`
}

func encode(t Type, v any) (Record, error) {
	p, err := json.Marshal(v)
	if err != nil {
		return Record{}, fmt.Errorf("wal: encode type %d: %w", t, err)
	}
	return Record{Type: t, Payload: p}, nil
}

// EncodeEntityUpsert records a full entity replacement.
func EncodeEntityUpsert(e *ngsi.Entity) (Record, error) {
	if rec, ok, err := binEncodeEntityUpsert(e); err != nil {
		return Record{}, fmt.Errorf("wal: encode type %d: %w", TypeEntityUpsert, err)
	} else if ok {
		return rec, nil
	}
	return encode(TypeEntityUpsert, e)
}

// DecodeEntityUpsert inverts EncodeEntityUpsert.
func DecodeEntityUpsert(rec Record) (*ngsi.Entity, error) {
	if rec.Codec == CodecBinary {
		return binDecodeEntityUpsert(rec)
	}
	var e ngsi.Entity
	if err := json.Unmarshal(rec.Payload, &e); err != nil {
		return nil, fmt.Errorf("wal: entity upsert payload: %w", err)
	}
	return &e, nil
}

// EncodeEntityMerge records one shard's resolved attribute-merge batch.
func EncodeEntityMerge(entries []ngsi.MergeEntry) (Record, error) {
	if rec, ok, err := binEncodeEntityMerge(entries); err != nil {
		return Record{}, fmt.Errorf("wal: encode type %d: %w", TypeEntityMerge, err)
	} else if ok {
		return rec, nil
	}
	p := mergePayload{Entries: make([]mergeEntry, len(entries))}
	for i, e := range entries {
		p.Entries[i] = mergeEntry{ID: e.ID, Type: e.Type, Attrs: e.Attrs}
	}
	return encode(TypeEntityMerge, p)
}

// DecodeEntityMerge inverts EncodeEntityMerge.
func DecodeEntityMerge(rec Record) ([]ngsi.MergeEntry, error) {
	if rec.Codec == CodecBinary {
		return binDecodeEntityMerge(rec)
	}
	var p mergePayload
	if err := json.Unmarshal(rec.Payload, &p); err != nil {
		return nil, fmt.Errorf("wal: entity merge payload: %w", err)
	}
	out := make([]ngsi.MergeEntry, len(p.Entries))
	for i, e := range p.Entries {
		out[i] = ngsi.MergeEntry{ID: e.ID, Type: e.Type, Attrs: e.Attrs}
	}
	return out, nil
}

// EncodeEntityDelete records an entity deletion.
func EncodeEntityDelete(id string) (Record, error) {
	return binEncodeID(TypeEntityDelete, id), nil
}

// EncodeSubscriptionDelete records a subscription removal.
func EncodeSubscriptionDelete(id string) (Record, error) {
	return binEncodeID(TypeSubscriptionDelete, id), nil
}

// DecodeID inverts EncodeEntityDelete / EncodeSubscriptionDelete.
func DecodeID(rec Record) (string, error) {
	if rec.Codec == CodecBinary {
		return binDecodeID(rec)
	}
	var p idPayload
	if err := json.Unmarshal(rec.Payload, &p); err != nil {
		return "", fmt.Errorf("wal: id payload: %w", err)
	}
	return p.ID, nil
}

// NewSubscriptionRecord builds the durable record for a webhook
// subscription — the single view→record mapping shared by the journal
// hook and the snapshot dump, so the two cannot drift when a field is
// added.
func NewSubscriptionRecord(v ngsi.SubscriptionView, endpoint string) SubscriptionRecord {
	return SubscriptionRecord{
		ID:              v.ID,
		EntityIDPattern: v.EntityIDPattern,
		EntityType:      v.EntityType,
		ConditionAttrs:  v.ConditionAttrs,
		NotifyAttrs:     v.NotifyAttrs,
		Throttling:      v.Throttling,
		Owner:           string(v.Owner),
		Endpoint:        endpoint,
	}
}

// EncodeSubscriptionPut records a durable webhook subscription.
func EncodeSubscriptionPut(sr SubscriptionRecord) (Record, error) {
	return binEncodeSubscriptionPut(sr), nil
}

// DecodeSubscriptionPut inverts EncodeSubscriptionPut.
func DecodeSubscriptionPut(rec Record) (SubscriptionRecord, error) {
	if rec.Codec == CodecBinary {
		return binDecodeSubscriptionPut(rec)
	}
	var sr SubscriptionRecord
	if err := json.Unmarshal(rec.Payload, &sr); err != nil {
		return sr, fmt.Errorf("wal: subscription payload: %w", err)
	}
	return sr, nil
}

// EncodeTelemetry records a batch of time-series points.
func EncodeTelemetry(batch []timeseries.BatchPoint) (Record, error) {
	if rec, ok, err := binEncodeTelemetry(batch); err != nil {
		return Record{}, fmt.Errorf("wal: encode type %d: %w", TypeTelemetry, err)
	} else if ok {
		return rec, nil
	}
	return encode(TypeTelemetry, telemetryPayload{Points: batch})
}

// DecodeTelemetry inverts EncodeTelemetry.
func DecodeTelemetry(rec Record) ([]timeseries.BatchPoint, error) {
	if rec.Codec == CodecBinary {
		return binDecodeTelemetry(rec)
	}
	var p telemetryPayload
	if err := json.Unmarshal(rec.Payload, &p); err != nil {
		return nil, fmt.Errorf("wal: telemetry payload: %w", err)
	}
	return p.Points, nil
}

// erredAck is a pre-failed durability handle for encoding errors.
type erredAck struct{ err error }

func (a erredAck) Wait() error { return a.err }

// ContextJournal adapts the manager to ngsi.Journal: every accepted
// context mutation becomes one appended record. The broker calls these
// hooks while holding the relevant shard (or subscription) lock, which
// is what makes log order match apply order; only the enqueue happens
// under the lock — the fsync wait is the caller's, after unlock.
func (m *Manager) ContextJournal() ngsi.Journal { return ctxJournal{m} }

type ctxJournal struct{ m *Manager }

func (j ctxJournal) EntityUpserted(e *ngsi.Entity) ngsi.JournalAck {
	rec, err := EncodeEntityUpsert(e)
	if err != nil {
		return erredAck{err}
	}
	return j.m.Append(rec)
}

func (j ctxJournal) EntitiesMerged(entries []ngsi.MergeEntry) ngsi.JournalAck {
	rec, err := EncodeEntityMerge(entries)
	if err != nil {
		return erredAck{err}
	}
	return j.m.Append(rec)
}

func (j ctxJournal) EntityDeleted(id string) ngsi.JournalAck {
	rec, err := EncodeEntityDelete(id)
	if err != nil {
		return erredAck{err}
	}
	return j.m.Append(rec)
}

func (j ctxJournal) SubscriptionPut(v ngsi.SubscriptionView, endpoint string) ngsi.JournalAck {
	rec, err := EncodeSubscriptionPut(NewSubscriptionRecord(v, endpoint))
	if err != nil {
		return erredAck{err}
	}
	return j.m.Append(rec)
}

func (j ctxJournal) SubscriptionDeleted(id string) ngsi.JournalAck {
	rec, err := EncodeSubscriptionDelete(id)
	if err != nil {
		return erredAck{err}
	}
	return j.m.Append(rec)
}

// TelemetryJournal adapts the manager to timeseries.Journal.
func (m *Manager) TelemetryJournal() timeseries.Journal { return tsJournal{m} }

type tsJournal struct{ m *Manager }

func (j tsJournal) PointsAppended(batch []timeseries.BatchPoint) timeseries.JournalAck {
	rec, err := EncodeTelemetry(batch)
	if err != nil {
		return erredAck{err}
	}
	return j.m.Append(rec)
}
