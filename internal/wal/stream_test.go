package wal

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
)

// TestSegmentsAndPaths: Segments lists the on-disk segment indexes in
// order, and SegmentPath round-trips through ReplayFile.
func TestSegmentsAndPaths(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir, func(c *Config) { c.SegmentBytes = 256 })
	defer m.Close()

	start := m.StartSeg()
	segs, err := m.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != start {
		t.Fatalf("fresh log segments = %v, want [%d]", segs, start)
	}

	// Small SegmentBytes forces rotations.
	const n = 50
	for i := 0; i < n; i++ {
		if err := m.AppendWait(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err = m.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotations, got segments %v", segs)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i] <= segs[i-1] {
			t.Fatalf("segments not ascending: %v", segs)
		}
	}
	total := 0
	for _, seg := range segs {
		cnt, torn, err := ReplayFile(m.SegmentPath(seg), func(Record) error { return nil })
		if err != nil || torn {
			t.Fatalf("segment %d: count=%d torn=%v err=%v", seg, cnt, torn, err)
		}
		total += cnt
	}
	if total != n {
		t.Fatalf("replayed %d records across segments, want %d", total, n)
	}
}

// TestSnapshotSeq: no snapshot → ok=false; after Snapshot the newest
// snapshot index is returned and its path replays.
func TestSnapshotSeq(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir)
	defer m.Close()

	if _, ok, err := m.SnapshotSeq(); err != nil || ok {
		t.Fatalf("fresh log SnapshotSeq ok=%v err=%v, want none", ok, err)
	}
	for i := 0; i < 10; i++ {
		if err := m.AppendWait(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	err := m.Snapshot(func(rotate func() error, sink func(Record) error) error {
		if err := rotate(); err != nil {
			return err
		}
		return sink(testRecord(999))
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, ok, err := m.SnapshotSeq()
	if err != nil || !ok {
		t.Fatalf("SnapshotSeq ok=%v err=%v after snapshot", ok, err)
	}
	cnt, torn, err := ReplayFile(m.SnapshotPath(idx), func(Record) error { return nil })
	if err != nil || torn || cnt != 1 {
		t.Fatalf("snapshot replay count=%d torn=%v err=%v", cnt, torn, err)
	}
}

// TestReplayFileApplyError: an apply failure aborts the replay and is
// wrapped (errors.Is reaches the sentinel).
func TestReplayFileApplyError(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir)
	for i := 0; i < 5; i++ {
		if err := m.AppendWait(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	seg := m.StartSeg()
	m.Close()

	sentinel := errors.New("stop here")
	seen := 0
	_, _, err := ReplayFile(filepath.Join(dir, segName(seg)), func(Record) error {
		seen++
		if seen == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if seen != 3 {
		t.Fatalf("apply ran %d times, want 3", seen)
	}
}

// TestCommitHookPositions: the hook fires once per committed record, in
// order, with 1-based in-segment positions that track rotations — and
// strictly before the corresponding AppendWait returns.
func TestCommitHookPositions(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir, func(c *Config) { c.SegmentBytes = 256 })
	defer m.Close()

	var mu sync.Mutex
	var poss []Pos
	m.SetCommitHook(func(rec Record, pos Pos) {
		mu.Lock()
		poss = append(poss, pos)
		mu.Unlock()
	})
	const n = 40
	for i := 0; i < n; i++ {
		if err := m.AppendWait(testRecord(i)); err != nil {
			t.Fatal(err)
		}
		// AppendWait returning means the fsync happened, and the hook
		// contract says it ran before pendings released.
		mu.Lock()
		got := len(poss)
		mu.Unlock()
		if got < i+1 {
			t.Fatalf("after append %d only %d hook firings", i, got)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(poss) != n {
		t.Fatalf("hook fired %d times, want %d", len(poss), n)
	}
	rotated := false
	for i := 1; i < len(poss); i++ {
		prev, cur := poss[i-1], poss[i]
		if !cur.Follows(prev) {
			t.Fatalf("pos %d (%s) does not follow %s", i, cur, prev)
		}
		if cur.Seg != prev.Seg {
			rotated = true
			if cur.Rec != 1 {
				t.Fatalf("first record of segment %d at Rec=%d, want 1", cur.Seg, cur.Rec)
			}
		}
	}
	if !rotated {
		t.Fatal("expected at least one rotation with 256-byte segments")
	}

	// Removing the hook stops firings.
	m.SetCommitHook(nil)
	if err := m.AppendWait(testRecord(n)); err != nil {
		t.Fatal(err)
	}
	if len(poss) != n {
		t.Fatalf("hook fired after removal: %d firings", len(poss))
	}
}

// TestPosOrdering pins the Pos comparison helpers the replication chain
// check depends on.
func TestPosOrdering(t *testing.T) {
	zero := Pos{}
	a := Pos{Seg: 3, Rec: 1}
	b := Pos{Seg: 3, Rec: 2}
	c := Pos{Seg: 4, Rec: 1}
	if !zero.IsZero() || a.IsZero() {
		t.Fatal("IsZero misreports")
	}
	if !zero.Less(a) || !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("Less misorders")
	}
	// Rotation: the first record of any later segment follows (torn or
	// truncated segment indexes may be skipped).
	if !b.Follows(a) || !c.Follows(b) || !c.Follows(a) {
		t.Fatal("Follows rejects valid successors")
	}
	d := Pos{Seg: 4, Rec: 2}
	if a.Follows(b) || d.Follows(b) || a.Follows(a) {
		t.Fatal("Follows accepts invalid successors")
	}
}
