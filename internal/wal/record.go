package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
)

// Type tags a Record's payload so recovery knows which store a record
// belongs to and how to decode it. The values are part of the on-disk
// format: never renumber, only append.
type Type uint8

// Record types. Context-plane records replay through the NGSI broker,
// telemetry records through the time-series store.
const (
	// TypeEntityUpsert carries a full entity replacement (ngsi.Entity).
	TypeEntityUpsert Type = iota + 1
	// TypeEntityMerge carries one shard's slice of an attribute-merge
	// batch, with timestamps already resolved.
	TypeEntityMerge
	// TypeEntityDelete carries the id of a deleted entity.
	TypeEntityDelete
	// TypeSubscriptionPut carries a durable (webhook) subscription.
	TypeSubscriptionPut
	// TypeSubscriptionDelete carries the id of a removed subscription.
	TypeSubscriptionDelete
	// TypeTelemetry carries a batch of time-series points.
	TypeTelemetry
)

// Record is one durable unit: a typed, opaque payload. The log frames it
// as [len uint32][crc32 uint32][type uint8][payload], CRC over
// type+payload, so a torn tail write is detected and replay stops there.
type Record struct {
	Type    Type
	Payload []byte
}

const (
	frameHeader = 8 // uint32 body length + uint32 CRC
	// MaxRecordBytes bounds one record's body so a corrupt length field
	// cannot drive an absurd allocation during replay.
	MaxRecordBytes = 64 << 20
)

// ErrTorn marks a truncated or corrupt record — the expected shape of the
// final record after a crash mid-write. Replay stops at the first one.
var ErrTorn = errors.New("wal: torn record")

// appendFrame appends rec's wire encoding to buf and returns the result.
func appendFrame(buf []byte, rec Record) []byte {
	n := 1 + len(rec.Payload)
	off := len(buf)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	buf = append(buf, hdr[:]...)
	buf = append(buf, byte(rec.Type))
	buf = append(buf, rec.Payload...)
	crc := crc32.ChecksumIEEE(buf[off+frameHeader:])
	binary.LittleEndian.PutUint32(buf[off+4:off+8], crc)
	return buf
}

// readRecord reads one frame. io.EOF means a clean end of the stream;
// ErrTorn means a partial or corrupt frame (stop replaying). Only
// truncation maps to ErrTorn — a real I/O error propagates, so recovery
// fails loudly instead of mistaking a bad read mid-segment for a crash
// tail and silently dropping the acknowledged records after it.
func readRecord(r io.Reader) (Record, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return Record{}, ErrTorn // partial header
		}
		return Record{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > MaxRecordBytes {
		return Record{}, ErrTorn
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Record{}, ErrTorn // partial body
		}
		return Record{}, err
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return Record{}, ErrTorn
	}
	return Record{Type: Type(body[0]), Payload: body[1:]}, nil
}
