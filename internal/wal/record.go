package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Type tags a Record's payload so recovery knows which store a record
// belongs to and how to decode it. The values are part of the on-disk
// format: never renumber, only append.
type Type uint8

// Record types. Context-plane records replay through the NGSI broker,
// telemetry records through the time-series store.
const (
	// TypeEntityUpsert carries a full entity replacement (ngsi.Entity).
	TypeEntityUpsert Type = iota + 1
	// TypeEntityMerge carries one shard's slice of an attribute-merge
	// batch, with timestamps already resolved.
	TypeEntityMerge
	// TypeEntityDelete carries the id of a deleted entity.
	TypeEntityDelete
	// TypeSubscriptionPut carries a durable (webhook) subscription.
	TypeSubscriptionPut
	// TypeSubscriptionDelete carries the id of a removed subscription.
	TypeSubscriptionDelete
	// TypeTelemetry carries a batch of time-series points.
	TypeTelemetry
)

// Codec tags how a Record's payload bytes are encoded. The values are
// part of the on-disk format: never renumber, only append.
type Codec uint8

const (
	// CodecJSON is the v1 payload encoding. It is the zero value so a
	// Record built by hand (tests, tools) still means what it meant
	// before codec v2 existed.
	CodecJSON Codec = iota
	// CodecBinary is the v2 payload encoding: varint-framed fields,
	// record-local string indexes into Strings, delta-encoded telemetry
	// timestamps, float64 bit packing. The typed codecs fall back to
	// CodecJSON per record for shapes the binary form cannot carry
	// (e.g. timestamps outside the unix-nano range).
	CodecBinary
)

// Record is one durable unit: a typed payload. In a v1 segment the log
// frames it as [len uint32][crc32 uint32][type uint8][payload], CRC over
// type+payload, so a torn tail write is detected and replay stops there.
// A v2 segment (marked by segMagic) frames the same outer
// [len][crc] envelope around [type u8][codec u8][nstr uvarint][string
// refs][payload]: Strings lists the record's distinct names, written
// either as a back-reference into the per-segment intern table or as an
// inline definition that extends it, and the payload refers to them by
// record-local index.
type Record struct {
	Type    Type
	Payload []byte
	// Codec says how Payload is encoded. Zero (CodecJSON) keeps
	// hand-built records meaning the same thing they did in v1.
	Codec Codec
	// Strings is the record-local string table used by CodecBinary
	// payloads. Entries are interned per segment on disk.
	Strings []string
}

const (
	frameHeader = 8 // uint32 body length + uint32 CRC
	// MaxRecordBytes bounds one record's body so a corrupt length field
	// cannot drive an absurd allocation during replay.
	MaxRecordBytes = 64 << 20
)

// segMagic opens every v2 segment and snapshot file. The first four
// bytes read as a little-endian uint32 far above MaxRecordBytes, so a v1
// reader that misparses the header as a frame length fails safe with
// ErrTorn instead of replaying garbage.
var segMagic = [8]byte{'S', 'W', 'A', 'L', '2', 0xF7, '\r', '\n'}

// ErrTorn marks a truncated or corrupt record — the expected shape of the
// final record after a crash mid-write. Replay stops at the first one.
var ErrTorn = errors.New("wal: torn record")

// errCorruptFrame marks a frame whose CRC passed but whose v2 body
// structure is invalid (bad varint, string reference out of range).
// Unlike ErrTorn this is not a crash artifact — the bytes were written
// that way — so replay fails loudly instead of silently truncating.
var errCorruptFrame = errors.New("wal: corrupt v2 frame body")

// appendFrame appends rec's v1 wire encoding to buf and returns the
// result. Codec v2 writers use segEncoder instead; this survives for the
// snapshot/segment format of v1 directories and for tests that fabricate
// them.
func appendFrame(buf []byte, rec Record) []byte {
	n := 1 + len(rec.Payload)
	off := len(buf)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	buf = append(buf, hdr[:]...)
	buf = append(buf, byte(rec.Type))
	buf = append(buf, rec.Payload...)
	crc := crc32.ChecksumIEEE(buf[off+frameHeader:])
	binary.LittleEndian.PutUint32(buf[off+4:off+8], crc)
	return buf
}

// readBody reads one frame envelope and returns its CRC-validated body.
// io.EOF means a clean end of the stream; ErrTorn means a partial or
// corrupt frame (stop replaying). Only truncation maps to ErrTorn — a
// real I/O error propagates, so recovery fails loudly instead of
// mistaking a bad read mid-segment for a crash tail and silently
// dropping the acknowledged records after it.
func readBody(r io.Reader) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return nil, ErrTorn // partial header
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > MaxRecordBytes {
		return nil, ErrTorn
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrTorn // partial body
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, ErrTorn
	}
	return body, nil
}

// readRecord reads one v1 frame. See readBody for the error contract.
func readRecord(r io.Reader) (Record, error) {
	body, err := readBody(r)
	if err != nil {
		return Record{}, err
	}
	return Record{Type: Type(body[0]), Payload: body[1:]}, nil
}

// segEncoder frames records for one v2 segment, owning its string intern
// table. It is not concurrency-safe: exactly one lives inside the
// committer goroutine per active segment (reset on rotation), and each
// snapshot file gets a private one.
type segEncoder struct {
	ids map[string]uint32
}

func newSegEncoder() *segEncoder { return &segEncoder{ids: make(map[string]uint32)} }

func (e *segEncoder) reset() { clear(e.ids) }

// appendFrame appends rec's v2 wire encoding to buf, interning rec's
// strings into the segment table as a side effect. Callers must not call
// it for a record that will not be written to the current segment — the
// table and the file advance together.
func (e *segEncoder) appendFrame(buf []byte, rec Record) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, frameHeader)...)
	buf = append(buf, byte(rec.Type), byte(rec.Codec))
	buf = binary.AppendUvarint(buf, uint64(len(rec.Strings)))
	for _, s := range rec.Strings {
		if id, ok := e.ids[s]; ok {
			buf = binary.AppendUvarint(buf, uint64(id)+1)
		} else {
			e.ids[s] = uint32(len(e.ids))
			buf = append(buf, 0)
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
	}
	buf = append(buf, rec.Payload...)
	n := len(buf) - off - frameHeader
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(n))
	crc := crc32.ChecksumIEEE(buf[off+frameHeader:])
	binary.LittleEndian.PutUint32(buf[off+4:off+8], crc)
	return buf
}

// maxBodyBytes over-estimates rec's v2 body size assuming every string
// needs an inline definition — the bound used for the MaxRecordBytes
// guard and for the segment-roll decision, which must happen before
// encoding (encoding interns into the segment the frame lands in).
func maxBodyBytes(rec Record) int {
	n := 2 + binary.MaxVarintLen64 + len(rec.Payload)
	for _, s := range rec.Strings {
		n += 1 + binary.MaxVarintLen64 + len(s)
	}
	return n
}

// segDecoder reads one v2 file, rebuilding the intern table in the order
// the encoder grew it.
type segDecoder struct {
	strs []string
}

func newSegDecoder() *segDecoder { return &segDecoder{} }

// readRecord reads one v2 frame. Torn/EOF semantics match readBody; a
// CRC-valid body that fails structural parsing returns errCorruptFrame.
func (d *segDecoder) readRecord(r io.Reader) (Record, error) {
	body, err := readBody(r)
	if err != nil {
		return Record{}, err
	}
	if len(body) < 2 {
		return Record{}, fmt.Errorf("%w: %d-byte body", errCorruptFrame, len(body))
	}
	rec := Record{Type: Type(body[0]), Codec: Codec(body[1])}
	p := body[2:]
	nstr, n := binary.Uvarint(p)
	if n <= 0 || nstr > uint64(len(body)) {
		return Record{}, fmt.Errorf("%w: string count", errCorruptFrame)
	}
	p = p[n:]
	if nstr > 0 {
		rec.Strings = make([]string, nstr)
		for i := range rec.Strings {
			ref, n := binary.Uvarint(p)
			if n <= 0 {
				return Record{}, fmt.Errorf("%w: string ref", errCorruptFrame)
			}
			p = p[n:]
			if ref == 0 { // inline definition, extends the segment table
				ln, n := binary.Uvarint(p)
				if n <= 0 || ln > uint64(len(p)-n) {
					return Record{}, fmt.Errorf("%w: string definition", errCorruptFrame)
				}
				p = p[n:]
				s := string(p[:ln])
				p = p[ln:]
				d.strs = append(d.strs, s)
				rec.Strings[i] = s
			} else {
				if ref-1 >= uint64(len(d.strs)) {
					return Record{}, fmt.Errorf("%w: string ref %d of %d", errCorruptFrame, ref-1, len(d.strs))
				}
				rec.Strings[i] = d.strs[ref-1]
			}
		}
	}
	rec.Payload = p
	return rec, nil
}

// isV2Header reports whether b opens with the v2 segment magic.
func isV2Header(b []byte) bool { return bytes.Equal(b, segMagic[:]) }
