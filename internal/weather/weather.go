// Package weather generates synthetic but climatologically plausible daily
// weather for each SWAMP pilot site. Real pilots feed the platform from
// weather stations; the simulator substitutes a seeded stochastic generator
// with the right seasonal shape (annual temperature cycle, rain regime,
// clear-sky radiation by latitude) so the irrigation logic downstream sees
// realistic forcing.
package weather

import (
	"fmt"
	"math"
	"math/rand"
)

// Climate parameterizes a site's weather statistics.
type Climate struct {
	Name string
	// LatitudeDeg drives day length and clear-sky radiation (negative =
	// southern hemisphere).
	LatitudeDeg float64
	AltitudeM   float64
	// TempMeanC is the annual mean daily-mean temperature.
	TempMeanC float64
	// TempAmplitudeC is the annual cycle half-range (mean of the warmest
	// day minus annual mean).
	TempAmplitudeC float64
	// DiurnalRangeC is the typical Tmax-Tmin spread.
	DiurnalRangeC float64
	// PeakDOY is the day of year with the highest mean temperature
	// (≈196 for the northern hemisphere, ≈15 for the southern).
	PeakDOY int
	// RHMeanPct is the mean relative humidity.
	RHMeanPct float64
	// WindMeanMS is the mean 2-metre wind speed.
	WindMeanMS float64
	// RainProb is the daily probability of rain.
	RainProb float64
	// RainMeanMM is the mean depth of a rainy day (exponential).
	RainMeanMM float64
	// CloudAttenuation in [0,1): mean fraction of clear-sky radiation lost
	// to clouds on rainy days.
	CloudAttenuation float64
}

// Pilot climates, shaped after the four SWAMP sites.
var (
	// CBEC: Po valley, humid subtropical; water arrives via canals.
	ClimateCBEC = Climate{
		Name: "cbec-bologna", LatitudeDeg: 44.6, AltitudeM: 30,
		TempMeanC: 14, TempAmplitudeC: 10, DiurnalRangeC: 9, PeakDOY: 200,
		RHMeanPct: 70, WindMeanMS: 2.0, RainProb: 0.25, RainMeanMM: 7, CloudAttenuation: 0.5,
	}
	// Intercrop: Cartagena, semi-arid Mediterranean; very little rain.
	ClimateIntercrop = Climate{
		Name: "intercrop-cartagena", LatitudeDeg: 37.6, AltitudeM: 10,
		TempMeanC: 18, TempAmplitudeC: 8, DiurnalRangeC: 8, PeakDOY: 205,
		RHMeanPct: 65, WindMeanMS: 3.0, RainProb: 0.07, RainMeanMM: 5, CloudAttenuation: 0.4,
	}
	// Guaspari: São Paulo highlands; dry winter (the irrigated harvest
	// window June-August the paper describes).
	ClimateGuaspari = Climate{
		Name: "guaspari-pinhal", LatitudeDeg: -22.2, AltitudeM: 900,
		TempMeanC: 19, TempAmplitudeC: 4, DiurnalRangeC: 12, PeakDOY: 20,
		RHMeanPct: 68, WindMeanMS: 1.8, RainProb: 0.18, RainMeanMM: 9, CloudAttenuation: 0.5,
	}
	// MATOPIBA: Barreiras cerrado; hot, marked wet/dry seasons.
	ClimateMATOPIBA = Climate{
		Name: "matopiba-barreiras", LatitudeDeg: -12.15, AltitudeM: 450,
		TempMeanC: 25, TempAmplitudeC: 3, DiurnalRangeC: 13, PeakDOY: 290,
		RHMeanPct: 55, WindMeanMS: 2.5, RainProb: 0.20, RainMeanMM: 11, CloudAttenuation: 0.45,
	}
)

// Day is one day of generated weather — exactly the inputs FAO-56 needs.
type Day struct {
	DOY       int // day of year, 1..366
	TminC     float64
	TmaxC     float64
	RHMeanPct float64
	WindMS    float64
	SolarMJ   float64 // shortwave radiation, MJ/m²/day
	RainMM    float64
}

// TmeanC returns the daily mean temperature.
func (d Day) TmeanC() float64 { return (d.TminC + d.TmaxC) / 2 }

// Generator produces a deterministic weather sequence for a climate and
// seed. Not safe for concurrent use; give each goroutine its own.
type Generator struct {
	c   Climate
	rng *rand.Rand
}

// NewGenerator validates the climate and builds a generator.
func NewGenerator(c Climate, seed int64) (*Generator, error) {
	if c.RainProb < 0 || c.RainProb > 1 {
		return nil, fmt.Errorf("weather: rain probability %g outside [0,1]", c.RainProb)
	}
	if c.LatitudeDeg < -66 || c.LatitudeDeg > 66 {
		return nil, fmt.Errorf("weather: latitude %g outside supported range", c.LatitudeDeg)
	}
	return &Generator{c: c, rng: rand.New(rand.NewSource(seed))}, nil
}

// Climate returns the generator's climate.
func (g *Generator) Climate() Climate { return g.c }

// Next generates the weather for day-of-year doy (1-based). Successive
// calls consume the generator's random stream, so call it in day order.
func (g *Generator) Next(doy int) Day {
	c := g.c
	phase := 2 * math.Pi * float64(doy-c.PeakDOY) / 365
	tmean := c.TempMeanC + c.TempAmplitudeC*math.Cos(phase) + g.rng.NormFloat64()*1.5

	half := c.DiurnalRangeC/2 + g.rng.NormFloat64()*0.8
	if half < 1 {
		half = 1
	}
	day := Day{
		DOY:       doy,
		TminC:     tmean - half,
		TmaxC:     tmean + half,
		RHMeanPct: clamp(c.RHMeanPct+g.rng.NormFloat64()*8, 15, 100),
		WindMS:    math.Max(0.3, c.WindMeanMS+g.rng.NormFloat64()*0.8),
	}

	raining := g.rng.Float64() < c.RainProb
	if raining {
		day.RainMM = g.rng.ExpFloat64() * c.RainMeanMM
		day.RHMeanPct = clamp(day.RHMeanPct+15, 15, 100)
	}

	rs := ClearSkyRadiation(c.LatitudeDeg, c.AltitudeM, doy)
	atten := 0.75 + g.rng.NormFloat64()*0.08 // typical clear-day transmissivity
	if raining {
		atten *= 1 - c.CloudAttenuation
	}
	day.SolarMJ = math.Max(1, rs*clamp(atten, 0.1, 1.0))
	return day
}

// Season generates days consecutive days starting at startDOY, wrapping
// around the year end.
func (g *Generator) Season(startDOY, days int) []Day {
	out := make([]Day, days)
	for i := 0; i < days; i++ {
		doy := (startDOY+i-1)%365 + 1
		out[i] = g.Next(doy)
	}
	return out
}

// ClearSkyRadiation returns the FAO-56 clear-sky shortwave radiation Rso
// (MJ/m²/day) for a latitude, altitude and day of year, via extraterrestrial
// radiation Ra (FAO-56 eq. 21-28 and 37).
func ClearSkyRadiation(latDeg, altitudeM float64, doy int) float64 {
	phi := latDeg * math.Pi / 180
	dr := 1 + 0.033*math.Cos(2*math.Pi/365*float64(doy))
	delta := 0.409 * math.Sin(2*math.Pi/365*float64(doy)-1.39)
	x := -math.Tan(phi) * math.Tan(delta)
	ws := math.Acos(clamp(x, -1, 1)) // sunset hour angle
	const gsc = 0.0820               // solar constant, MJ/m²/min
	ra := 24 * 60 / math.Pi * gsc * dr *
		(ws*math.Sin(phi)*math.Sin(delta) + math.Cos(phi)*math.Cos(delta)*math.Sin(ws))
	return (0.75 + 2e-5*altitudeM) * ra
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}
