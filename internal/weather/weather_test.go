package weather

import (
	"math"
	"testing"
)

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := NewGenerator(ClimateMATOPIBA, 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(ClimateMATOPIBA, 42)
	for doy := 1; doy <= 30; doy++ {
		d1, d2 := g1.Next(doy), g2.Next(doy)
		if d1 != d2 {
			t.Fatalf("doy %d: generators diverged: %+v vs %+v", doy, d1, d2)
		}
	}
	g3, _ := NewGenerator(ClimateMATOPIBA, 43)
	diff := false
	for doy := 1; doy <= 10; doy++ {
		if g3.Next(doy) != g1.Next(doy) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical weather")
	}
}

func TestGeneratorPlausibleRanges(t *testing.T) {
	for _, c := range []Climate{ClimateCBEC, ClimateIntercrop, ClimateGuaspari, ClimateMATOPIBA} {
		g, err := NewGenerator(c, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range g.Season(1, 365) {
			if d.TmaxC <= d.TminC {
				t.Fatalf("%s doy %d: Tmax %.1f <= Tmin %.1f", c.Name, d.DOY, d.TmaxC, d.TminC)
			}
			if d.TmeanC() < -20 || d.TmeanC() > 50 {
				t.Fatalf("%s doy %d: Tmean %.1f implausible", c.Name, d.DOY, d.TmeanC())
			}
			if d.RHMeanPct < 15 || d.RHMeanPct > 100 {
				t.Fatalf("%s doy %d: RH %.1f", c.Name, d.DOY, d.RHMeanPct)
			}
			if d.WindMS < 0.2 || d.WindMS > 20 {
				t.Fatalf("%s doy %d: wind %.1f", c.Name, d.DOY, d.WindMS)
			}
			if d.SolarMJ < 0.5 || d.SolarMJ > 40 {
				t.Fatalf("%s doy %d: solar %.1f", c.Name, d.DOY, d.SolarMJ)
			}
			if d.RainMM < 0 {
				t.Fatalf("%s doy %d: negative rain", c.Name, d.DOY)
			}
		}
	}
}

func TestSeasonalCycleShape(t *testing.T) {
	g, _ := NewGenerator(ClimateCBEC, 7)
	days := g.Season(1, 365)
	// Mean July temperature should exceed mean January temperature in
	// Bologna by a wide margin.
	var jan, jul float64
	for i := 0; i < 31; i++ {
		jan += days[i].TmeanC() / 31
	}
	for i := 181; i < 212; i++ {
		jul += days[i].TmeanC() / 31
	}
	if jul-jan < 10 {
		t.Errorf("CBEC seasonal swing: Jan %.1f, Jul %.1f", jan, jul)
	}
}

func TestSouthernHemisphereInverted(t *testing.T) {
	g, _ := NewGenerator(ClimateGuaspari, 7)
	days := g.Season(1, 365)
	var jan, jul float64
	for i := 0; i < 31; i++ {
		jan += days[i].TmeanC() / 31
	}
	for i := 181; i < 212; i++ {
		jul += days[i].TmeanC() / 31
	}
	if jan <= jul {
		t.Errorf("Guaspari (southern hemisphere): Jan %.1f should exceed Jul %.1f", jan, jul)
	}
}

func TestRainStatistics(t *testing.T) {
	g, _ := NewGenerator(ClimateIntercrop, 11)
	rainDays := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if g.Next(i%365+1).RainMM > 0 {
			rainDays++
		}
	}
	frac := float64(rainDays) / n
	if math.Abs(frac-ClimateIntercrop.RainProb) > 0.03 {
		t.Errorf("rain frequency %.3f, configured %.3f", frac, ClimateIntercrop.RainProb)
	}
}

func TestClearSkyRadiation(t *testing.T) {
	// Summer solstice at 44.6N should far exceed winter solstice.
	summer := ClearSkyRadiation(44.6, 30, 172)
	winter := ClearSkyRadiation(44.6, 30, 355)
	if summer < 2*winter {
		t.Errorf("seasonal radiation: summer %.1f winter %.1f", summer, winter)
	}
	if summer < 25 || summer > 35 {
		t.Errorf("summer Rso %.1f MJ/m²/day implausible for 44.6N", summer)
	}
	// Equator is roughly season-invariant.
	e1 := ClearSkyRadiation(0, 0, 80)
	e2 := ClearSkyRadiation(0, 0, 260)
	if math.Abs(e1-e2)/e1 > 0.1 {
		t.Errorf("equator radiation varies too much: %.1f vs %.1f", e1, e2)
	}
}

func TestGeneratorValidation(t *testing.T) {
	bad := ClimateCBEC
	bad.RainProb = 1.5
	if _, err := NewGenerator(bad, 1); err == nil {
		t.Error("bad rain probability accepted")
	}
	polar := ClimateCBEC
	polar.LatitudeDeg = 80
	if _, err := NewGenerator(polar, 1); err == nil {
		t.Error("polar latitude accepted")
	}
}

func TestSeasonWrapsYear(t *testing.T) {
	g, _ := NewGenerator(ClimateMATOPIBA, 5)
	days := g.Season(360, 10)
	if len(days) != 10 {
		t.Fatalf("season length %d", len(days))
	}
	if days[0].DOY != 360 || days[9].DOY != 4 {
		t.Errorf("DOY wrap: first %d last %d", days[0].DOY, days[9].DOY)
	}
}
