// Package attack implements runnable versions of every threat Section III
// of the SWAMP paper enumerates: DoS floods against the broker, sensor
// value tampering (bias / spike / stuck / scale), Sybil swarms of fake
// identities, passive eavesdropping for commodity-market intelligence,
// replay of captured envelopes, and rogue actuator commands.
//
// Injectors operate through the same interfaces honest components use
// (publish functions, send functions), so experiments exercise the real
// pipeline end to end. This package exists to evaluate the platform's
// defenses — pair every injector with the anomaly/secchan/pep counterpart
// that detects or blocks it.
package attack

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/agent"
	"github.com/swamp-project/swamp/internal/model"
)

// PublishFunc abstracts "publish one MQTT message" so injectors can drive
// a real client, a broker injection point, or a test recorder.
type PublishFunc func(topic string, payload []byte) error

// FloodStats reports a DoS run.
type FloodStats struct {
	Sent   uint64
	Errors uint64
}

// DoSFlooder hammers a topic at a configured rate — the §III
// denial-of-service attack on sensors/broker capacity.
type DoSFlooder struct {
	Publish PublishFunc
	Topic   string
	// RatePerSec is the target publish rate (required).
	RatePerSec float64
	// PayloadLen is the flood message size (default 64 bytes).
	PayloadLen int
}

// Run floods until stop closes or d elapses (whichever first; pass d<=0
// for stop-only). It returns the stats.
func (f *DoSFlooder) Run(stop <-chan struct{}, d time.Duration) (FloodStats, error) {
	if f.Publish == nil || f.Topic == "" || f.RatePerSec <= 0 {
		return FloodStats{}, fmt.Errorf("attack: flooder needs publish, topic and positive rate")
	}
	plen := f.PayloadLen
	if plen <= 0 {
		plen = 64
	}
	payload := make([]byte, plen)
	interval := time.Duration(float64(time.Second) / f.RatePerSec)
	if interval <= 0 {
		interval = time.Microsecond
	}
	var deadline <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		deadline = t.C
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var stats FloodStats
	for {
		select {
		case <-stop:
			return stats, nil
		case <-deadline:
			return stats, nil
		case <-tick.C:
			if err := f.Publish(f.Topic, payload); err != nil {
				stats.Errors++
			} else {
				stats.Sent++
			}
		}
	}
}

// TamperMode selects how a man-in-the-middle perturbs readings.
type TamperMode int

// Tamper modes.
const (
	// TamperBias adds Param to every value — the slow poison that drags
	// irrigation decisions off target.
	TamperBias TamperMode = iota + 1
	// TamperSpike multiplies occasional values by Param (impulse noise).
	TamperSpike
	// TamperStuck freezes the value at the first one seen.
	TamperStuck
	// TamperScale multiplies every value by Param.
	TamperScale
)

// TamperSender wraps a device's send function with a §III value-tampering
// MITM. spikeProb applies only to TamperSpike.
func TamperSender(inner func([]model.Reading) error, mode TamperMode, param, spikeProb float64, seed int64) (func([]model.Reading) error, error) {
	switch mode {
	case TamperBias, TamperSpike, TamperStuck, TamperScale:
	default:
		return nil, fmt.Errorf("attack: unknown tamper mode %d", mode)
	}
	if mode == TamperSpike && (spikeProb <= 0 || spikeProb > 1) {
		return nil, fmt.Errorf("attack: spike probability %g outside (0,1]", spikeProb)
	}
	rng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	frozen := make(map[model.Quantity]float64)
	return func(readings []model.Reading) error {
		out := make([]model.Reading, len(readings))
		copy(out, readings)
		mu.Lock()
		for i := range out {
			switch mode {
			case TamperBias:
				out[i].Value += param
			case TamperScale:
				out[i].Value *= param
			case TamperSpike:
				if rng.Float64() < spikeProb {
					out[i].Value *= param
				}
			case TamperStuck:
				if v, ok := frozen[out[i].Quantity]; ok {
					out[i].Value = v
				} else {
					frozen[out[i].Quantity] = out[i].Value
				}
			}
		}
		mu.Unlock()
		return inner(out)
	}, nil
}

// SybilSwarm fabricates n identities that publish near-identical readings —
// the fake-sensor / fake-drone attack corrupting NDVI and soil maps.
type SybilSwarm struct {
	// IDPrefix names the fake identities ("sybil-0", "sybil-1", …).
	IDPrefix string
	// N is the number of identities (required).
	N int
	// Publish sends one reading batch for one fake identity.
	Publish func(deviceID string, readings []model.Reading) error
	// Value is the fabricated measurement level.
	Value    float64
	Quantity model.Quantity
	// JitterStd adds tiny per-identity noise; a naive attacker uses 0,
	// a careful one mimics sensor noise. Either way first-seen clustering
	// plus stream similarity catches the naive case.
	JitterStd float64

	rng *rand.Rand
}

// Round publishes one synchronized round of fabricated readings at time at.
func (s *SybilSwarm) Round(at time.Time) error {
	if s.N <= 0 || s.Publish == nil {
		return fmt.Errorf("attack: swarm needs N and publish")
	}
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(0xDEAD))
	}
	base := s.Value
	for i := 0; i < s.N; i++ {
		v := base
		if s.JitterStd > 0 {
			v += s.rng.NormFloat64() * s.JitterStd
		}
		r := model.Reading{
			Device:   model.DeviceID(fmt.Sprintf("%s-%d", s.IDPrefix, i)),
			Quantity: s.Quantity,
			Value:    v,
			At:       at,
		}
		if err := s.Publish(string(r.Device), []model.Reading{r}); err != nil {
			return fmt.Errorf("attack: sybil %d: %w", i, err)
		}
	}
	return nil
}

// Eavesdropper passively captures traffic (wire taps, compromised broker,
// rogue subscriber) and measures how much of it is intelligible — the
// commodity-market leakage scenario. Feed it with Observe; Analyze reports
// the exposure.
type Eavesdropper struct {
	mu       sync.Mutex
	captured []capture
}

type capture struct {
	topic   string
	payload []byte
}

// Observe records one captured frame.
func (e *Eavesdropper) Observe(topic string, payload []byte) {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	e.mu.Lock()
	e.captured = append(e.captured, capture{topic: topic, payload: cp})
	e.mu.Unlock()
}

// Exposure summarises an eavesdropping campaign.
type Exposure struct {
	Total int
	// Intelligible counts payloads that parsed as UltraLight cleartext —
	// each one leaks crop state to the attacker.
	Intelligible int
	// Opaque counts payloads that did not parse (sealed or binary).
	Opaque int
}

// Analyze classifies everything captured so far.
func (e *Eavesdropper) Analyze() Exposure {
	e.mu.Lock()
	defer e.mu.Unlock()
	exp := Exposure{Total: len(e.captured)}
	for _, c := range e.captured {
		if _, err := agent.DecodeUL(string(c.payload)); err == nil {
			exp.Intelligible++
		} else {
			exp.Opaque++
		}
	}
	return exp
}

// Captured returns the number of captured frames.
func (e *Eavesdropper) Captured() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.captured)
}

// Replayer captures frames and re-publishes them later — the
// record-and-reinject attack that secchan's sequence window must stop.
type Replayer struct {
	mu       sync.Mutex
	captured []capture
}

// Capture records a frame for later replay.
func (r *Replayer) Capture(topic string, payload []byte) {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	r.mu.Lock()
	r.captured = append(r.captured, capture{topic: topic, payload: cp})
	r.mu.Unlock()
}

// ReplayAll re-publishes every captured frame through publish, returning
// how many sends succeeded at the transport level (acceptance at the
// application layer is what the replay guard decides).
func (r *Replayer) ReplayAll(publish PublishFunc) (int, error) {
	if publish == nil {
		return 0, fmt.Errorf("attack: replayer needs publish")
	}
	r.mu.Lock()
	frames := append([]capture(nil), r.captured...)
	r.mu.Unlock()
	n := 0
	for _, c := range frames {
		if err := publish(c.topic, c.payload); err == nil {
			n++
		}
	}
	return n, nil
}

// RogueCommander fires actuator commands through whatever command channel
// the attacker reached (a stolen token, an unprotected agent) — the §III
// actuator-takeover threat.
type RogueCommander struct {
	// Send issues one command (e.g. agent.SendCommand or a PEP-guarded
	// wrapper — the experiment compares both).
	Send func(model.Command) error
	// Issuer is the identity the attacker presents.
	Issuer string
}

// OpenEverything commands every target to a destructive full-open state.
// It returns per-target errors (nil error = the attack got through).
func (rc *RogueCommander) OpenEverything(targets []model.DeviceID, at time.Time) map[model.DeviceID]error {
	out := make(map[model.DeviceID]error, len(targets))
	for _, tgt := range targets {
		out[tgt] = rc.Send(model.Command{
			Target: tgt, Name: "open", Value: 1.0, Issuer: rc.Issuer, At: at,
		})
	}
	return out
}
