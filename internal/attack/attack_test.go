package attack

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/agent"
	"github.com/swamp-project/swamp/internal/anomaly"
	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/security/secchan"
)

func TestDoSFlooderRateAndStats(t *testing.T) {
	var mu sync.Mutex
	n := 0
	pub := func(topic string, payload []byte) error {
		mu.Lock()
		n++
		mu.Unlock()
		return nil
	}
	f := &DoSFlooder{Publish: pub, Topic: "x", RatePerSec: 1000}
	stats, err := f.Run(nil, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent < 30 || stats.Errors != 0 {
		t.Errorf("stats = %+v", stats)
	}
	mu.Lock()
	defer mu.Unlock()
	if uint64(n) != stats.Sent {
		t.Errorf("published %d, stats %d", n, stats.Sent)
	}
}

func TestDoSFlooderStopsOnSignal(t *testing.T) {
	stop := make(chan struct{})
	f := &DoSFlooder{Publish: func(string, []byte) error { return nil }, Topic: "x", RatePerSec: 100}
	done := make(chan FloodStats, 1)
	go func() {
		st, _ := f.Run(stop, 0)
		done <- st
	}()
	time.Sleep(30 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("flooder did not stop")
	}
}

func TestDoSFlooderValidation(t *testing.T) {
	f := &DoSFlooder{}
	if _, err := f.Run(nil, time.Millisecond); err == nil {
		t.Error("empty flooder accepted")
	}
}

func TestDoSFlooderTriggersRateDetector(t *testing.T) {
	det := anomaly.NewRateDetector(anomaly.RateConfig{Window: time.Second, LimitPerSec: 20})
	var alert *anomaly.Alert
	var mu sync.Mutex
	pub := func(topic string, payload []byte) error {
		mu.Lock()
		defer mu.Unlock()
		if a := det.Observe("flooder", time.Now()); a != nil && alert == nil {
			alert = a
		}
		return nil
	}
	f := &DoSFlooder{Publish: pub, Topic: "t", RatePerSec: 2000}
	f.Run(nil, 200*time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if alert == nil {
		t.Fatal("flood not detected by rate detector")
	}
}

func collect(dst *[]model.Reading, mu *sync.Mutex) func([]model.Reading) error {
	return func(rs []model.Reading) error {
		mu.Lock()
		*dst = append(*dst, rs...)
		mu.Unlock()
		return nil
	}
}

func TestTamperBiasAndScale(t *testing.T) {
	var got []model.Reading
	var mu sync.Mutex
	in := []model.Reading{{Device: "d", Quantity: model.QSoilMoisture, Value: 0.20, At: time.Now()}}

	bias, err := TamperSender(collect(&got, &mu), TamperBias, 0.1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	bias(in)
	scale, _ := TamperSender(collect(&got, &mu), TamperScale, 0.5, 0, 1)
	scale(in)
	mu.Lock()
	defer mu.Unlock()
	if got[0].Value != 0.30000000000000004 && got[0].Value != 0.3 {
		t.Errorf("bias: %g", got[0].Value)
	}
	if got[1].Value != 0.10 {
		t.Errorf("scale: %g", got[1].Value)
	}
	// Originals untouched.
	if in[0].Value != 0.20 {
		t.Error("tamper mutated caller's slice")
	}
}

func TestTamperStuckFreezes(t *testing.T) {
	var got []model.Reading
	var mu sync.Mutex
	stuck, err := TamperSender(collect(&got, &mu), TamperStuck, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		stuck([]model.Reading{{Device: "d", Quantity: model.QSoilMoisture, Value: 0.2 + float64(i)*0.01, At: time.Now()}})
	}
	mu.Lock()
	defer mu.Unlock()
	for i, r := range got {
		if r.Value != 0.2 {
			t.Errorf("reading %d = %g, want frozen 0.2", i, r.Value)
		}
	}
}

func TestTamperSpike(t *testing.T) {
	var got []model.Reading
	var mu sync.Mutex
	spike, err := TamperSender(collect(&got, &mu), TamperSpike, 10, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		spike([]model.Reading{{Device: "d", Quantity: model.QSoilMoisture, Value: 1, At: time.Now()}})
	}
	mu.Lock()
	defer mu.Unlock()
	spiked := 0
	for _, r := range got {
		if r.Value == 10 {
			spiked++
		}
	}
	if spiked < 25 || spiked > 75 {
		t.Errorf("spiked %d/100 at p=0.5", spiked)
	}
}

func TestTamperValidation(t *testing.T) {
	if _, err := TamperSender(func([]model.Reading) error { return nil }, TamperMode(99), 0, 0, 1); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := TamperSender(func([]model.Reading) error { return nil }, TamperSpike, 2, 0, 1); err == nil {
		t.Error("spike without probability accepted")
	}
}

func TestTamperDetectedByEWMA(t *testing.T) {
	det := anomaly.NewEWMADetector(anomaly.EWMAConfig{})
	var alerts []anomaly.Alert
	var mu sync.Mutex
	honest := func(rs []model.Reading) error {
		mu.Lock()
		defer mu.Unlock()
		for _, r := range rs {
			if a := det.Observe(string(r.Device), r.Value, r.At); a != nil {
				alerts = append(alerts, *a)
			}
		}
		return nil
	}
	// Baseline period: honest traffic.
	for i := 0; i < 100; i++ {
		honest([]model.Reading{{Device: "p", Quantity: model.QSoilMoisture, Value: 0.25 + 0.001*float64(i%5), At: time.Now()}})
	}
	// Then the MITM injects a large spike.
	spike, _ := TamperSender(honest, TamperBias, 0.3, 0, 1)
	spike([]model.Reading{{Device: "p", Quantity: model.QSoilMoisture, Value: 0.25, At: time.Now()}})
	mu.Lock()
	defer mu.Unlock()
	if len(alerts) == 0 {
		t.Fatal("biased reading not detected")
	}
}

func TestSybilSwarmRound(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[string][]float64)
	pub := func(dev string, rs []model.Reading) error {
		mu.Lock()
		defer mu.Unlock()
		for _, r := range rs {
			seen[dev] = append(seen[dev], r.Value)
		}
		return nil
	}
	s := &SybilSwarm{IDPrefix: "fake", N: 5, Publish: pub, Value: 0.8, Quantity: model.QNDVI}
	for k := 0; k < 3; k++ {
		if err := s.Round(time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 5 {
		t.Fatalf("identities = %d", len(seen))
	}
	for dev, vs := range seen {
		if len(vs) != 3 {
			t.Errorf("%s published %d rounds", dev, len(vs))
		}
		for _, v := range vs {
			if v != 0.8 {
				t.Errorf("%s value %g", dev, v)
			}
		}
	}
	bad := &SybilSwarm{}
	if err := bad.Round(time.Now()); err == nil {
		t.Error("empty swarm accepted")
	}
}

func TestSybilSwarmCaughtByDetector(t *testing.T) {
	det := anomaly.NewSybilDetector(anomaly.SybilConfig{MinSamples: 4, MinClusterSize: 4})
	pub := func(dev string, rs []model.Reading) error {
		for _, r := range rs {
			det.Observe(dev, r.Value, r.At)
		}
		return nil
	}
	s := &SybilSwarm{IDPrefix: "sy", N: 6, Publish: pub, Value: 0.8, Quantity: model.QNDVI}
	for k := 0; k < 6; k++ {
		s.Round(time.Now())
	}
	alerts := det.Scan(time.Now())
	if len(alerts) != 6 {
		t.Fatalf("detected %d of 6 sybil identities", len(alerts))
	}
}

func TestEavesdropperExposure(t *testing.T) {
	var e Eavesdropper
	// Plaintext UL traffic: fully intelligible.
	for i := 0; i < 10; i++ {
		e.Observe("t", []byte(agent.EncodeUL(map[string]float64{"m": 0.2 + float64(i)*0.01})))
	}
	// Sealed traffic: opaque.
	ring := secchan.NewKeyRing()
	ring.Generate("dev")
	for i := 0; i < 15; i++ {
		env, err := ring.Seal("dev", []byte("m|0.25"), nil)
		if err != nil {
			t.Fatal(err)
		}
		e.Observe("t", env)
	}
	exp := e.Analyze()
	if exp.Total != 25 || exp.Intelligible != 10 || exp.Opaque != 15 {
		t.Errorf("exposure = %+v", exp)
	}
	if e.Captured() != 25 {
		t.Errorf("captured = %d", e.Captured())
	}
}

func TestReplayerBlockedBySecchan(t *testing.T) {
	ring := secchan.NewKeyRing()
	ring.Generate("dev")
	guard := secchan.NewReplayGuard()

	var r Replayer
	accepted, rejected := 0, 0
	receive := func(topic string, payload []byte) error {
		sender, seq, _, err := ring.Open(payload, nil)
		if err != nil {
			rejected++
			return nil
		}
		if err := guard.Check(sender, seq); err != nil {
			rejected++
			return nil
		}
		accepted++
		return nil
	}

	// Legitimate transmission, captured on the wire.
	for i := 0; i < 8; i++ {
		env, _ := ring.Seal("dev", []byte(fmt.Sprintf("m|0.%d", i)), nil)
		r.Capture("t", env)
		receive("t", env)
	}
	if accepted != 8 {
		t.Fatalf("legitimate traffic: %d accepted", accepted)
	}
	// Replay the whole capture: everything must bounce off the guard.
	sent, err := r.ReplayAll(receive)
	if err != nil || sent != 8 {
		t.Fatalf("replay sent %d, err %v", sent, err)
	}
	if accepted != 8 || rejected != 8 {
		t.Errorf("after replay: accepted %d rejected %d", accepted, rejected)
	}
	if _, err := r.ReplayAll(nil); err == nil {
		t.Error("nil publish accepted")
	}
}

func TestRogueCommander(t *testing.T) {
	var issued []model.Command
	unprotected := func(c model.Command) error {
		issued = append(issued, c)
		return nil
	}
	rc := &RogueCommander{Send: unprotected, Issuer: "stolen-token"}
	res := rc.OpenEverything([]model.DeviceID{"valve-1", "pump-1"}, time.Now())
	if len(res) != 2 || res["valve-1"] != nil {
		t.Errorf("unprotected attack blocked unexpectedly: %v", res)
	}
	if len(issued) != 2 || issued[0].Value != 1.0 {
		t.Errorf("issued = %+v", issued)
	}

	// With an authorizing wrapper, the same attack dies at the PEP.
	guarded := func(c model.Command) error {
		if c.Issuer != "authorized-operator" {
			return errors.New("pep: denied")
		}
		return nil
	}
	rc2 := &RogueCommander{Send: guarded, Issuer: "stolen-token"}
	res2 := rc2.OpenEverything([]model.DeviceID{"valve-1"}, time.Now())
	if res2["valve-1"] == nil {
		t.Error("guarded command channel let the rogue through")
	}
}
