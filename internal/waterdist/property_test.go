package waterdist

import (
	"testing"
	"testing/quick"
)

// Property: proportional allocation never exceeds demand or capacity, and
// when nothing is oversubscribed it equals demand exactly.
func TestProportionalInvariantsProperty(t *testing.T) {
	n := cbecNet(t)
	f := func(d1, d2, d3, d4 uint8) bool {
		demand := map[string]float64{
			"f1": float64(d1), "f2": float64(d2), "f3": float64(d3), "f4": float64(d4),
		}
		alloc, err := n.AllocateProportional(demand)
		if err != nil {
			return false
		}
		for id, d := range demand {
			if alloc[id] > d+1e-6 || alloc[id] < -1e-9 {
				return false
			}
		}
		if alloc["f3"]+alloc["f4"] > 30+1e-6 {
			return false
		}
		if alloc["f1"]+alloc["f2"] > 60+1e-6 {
			return false
		}
		return alloc.Total() <= 100+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: max-min is never worse for the minimum-delivery farm than
// proportional (the optimizer's defining guarantee on trees).
func TestMaxMinDominatesWorstCaseProperty(t *testing.T) {
	n := cbecNet(t)
	f := func(d1, d2, d3, d4 uint8) bool {
		demand := map[string]float64{
			"f1": float64(d1) + 1, "f2": float64(d2) + 1,
			"f3": float64(d3) + 1, "f4": float64(d4) + 1,
		}
		prop, err := n.AllocateProportional(demand)
		if err != nil {
			return false
		}
		fair, err := n.AllocateMaxMin(demand)
		if err != nil {
			return false
		}
		minOf := func(a Allocation) float64 {
			m := -1.0
			for _, off := range n.Offtakes() {
				if m < 0 || a[off] < m {
					m = a[off]
				}
			}
			return m
		}
		return minOf(fair) >= minOf(prop)-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: cost-aware sourcing is never more expensive than the naive
// split for the same delivered volume.
func TestCostAwareDominatesProperty(t *testing.T) {
	sources := intercropSources()
	f := func(dRaw uint16) bool {
		demand := float64(dRaw % 3000)
		smart, err := AllocateByCost(demand, sources)
		if err != nil {
			return false
		}
		naive, err := AllocateNaive(demand, sources)
		if err != nil {
			return false
		}
		if smart.Shortfall > naive.Shortfall+1e-6 {
			return false
		}
		if smart.Shortfall == naive.Shortfall {
			return smart.CostEUR <= naive.CostEUR+1e-6
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
