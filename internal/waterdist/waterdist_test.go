package waterdist

import (
	"math"
	"testing"
	"testing/quick"
)

// cbecNet builds:   source ──main(100)──> j1 ──north(60)──> f1, f2
//
//	└──south(30)──> f3, f4
func cbecNet(t *testing.T) *Network {
	t.Helper()
	n, err := NewNetwork("src")
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.AddCanal("src", "j1", KindJunction, 100))
	must(n.AddCanal("j1", "north", KindJunction, 60))
	must(n.AddCanal("j1", "south", KindJunction, 30))
	must(n.AddCanal("north", "f1", KindOfftake, 50))
	must(n.AddCanal("north", "f2", KindOfftake, 50))
	must(n.AddCanal("south", "f3", KindOfftake, 25))
	must(n.AddCanal("south", "f4", KindOfftake, 25))
	must(n.Validate())
	return n
}

func TestNetworkConstructionErrors(t *testing.T) {
	if _, err := NewNetwork(""); err == nil {
		t.Error("empty source accepted")
	}
	n, _ := NewNetwork("s")
	if err := n.AddCanal("ghost", "x", KindJunction, 10); err == nil {
		t.Error("unknown parent accepted")
	}
	if err := n.AddCanal("s", "x", KindJunction, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	if err := n.AddCanal("s", "x", NodeKind(0), 10); err == nil {
		t.Error("bad kind accepted")
	}
	n.AddCanal("s", "leaf", KindOfftake, 10)
	if err := n.AddCanal("leaf", "y", KindOfftake, 5); err == nil {
		t.Error("child under offtake accepted")
	}
	if err := n.AddCanal("s", "leaf", KindOfftake, 10); err == nil {
		t.Error("duplicate node accepted")
	}
	// Dead-end junction fails validation.
	n2, _ := NewNetwork("s")
	n2.AddCanal("s", "j", KindJunction, 10)
	n2.AddCanal("s", "f", KindOfftake, 10)
	if err := n2.Validate(); err == nil {
		t.Error("dead-end junction passed validation")
	}
	// No offtakes at all.
	n3, _ := NewNetwork("s")
	if err := n3.Validate(); err == nil {
		t.Error("offtake-less network passed validation")
	}
}

func TestAllocationUnderAmpleCapacity(t *testing.T) {
	n := cbecNet(t)
	demand := map[string]float64{"f1": 10, "f2": 10, "f3": 10, "f4": 5}
	for name, alloc := range map[string]func(map[string]float64) (Allocation, error){
		"proportional": n.AllocateProportional,
		"maxmin":       n.AllocateMaxMin,
	} {
		got, err := alloc(demand)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for id, d := range demand {
			if math.Abs(got[id]-d) > 1e-6 {
				t.Errorf("%s: %s got %.2f, want %.2f", name, id, got[id], d)
			}
		}
	}
}

func TestAllocationRespectsCapacities(t *testing.T) {
	n := cbecNet(t)
	// south canal (30) oversubscribed: f3+f4 want 50.
	demand := map[string]float64{"f1": 20, "f2": 20, "f3": 30, "f4": 20}
	for name, alloc := range map[string]func(map[string]float64) (Allocation, error){
		"proportional": n.AllocateProportional,
		"maxmin":       n.AllocateMaxMin,
	} {
		got, err := alloc(demand)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if f := got["f3"] + got["f4"]; f > 30+1e-6 {
			t.Errorf("%s: south canal flow %.2f exceeds 30", name, f)
		}
		if f := got.Total(); f > 100+1e-6 {
			t.Errorf("%s: main canal flow %.2f exceeds 100", name, f)
		}
		// North side unconstrained: fully served.
		if got["f1"] < 20-1e-6 || got["f2"] < 20-1e-6 {
			t.Errorf("%s: north farms cut unnecessarily: %v", name, got)
		}
	}
}

func TestMaxMinFairerThanProportional(t *testing.T) {
	n := cbecNet(t)
	// Unequal demands on the bottlenecked south branch: f3 wants 4x f4.
	demand := map[string]float64{"f3": 40, "f4": 10}
	prop, err := n.AllocateProportional(demand)
	if err != nil {
		t.Fatal(err)
	}
	fair, err := n.AllocateMaxMin(demand)
	if err != nil {
		t.Fatal(err)
	}
	// Proportional scales both by 30/50: f4 gets 6.
	if math.Abs(prop["f4"]-6) > 1e-6 {
		t.Errorf("proportional f4 = %.2f, want 6", prop["f4"])
	}
	// Max-min serves the small farm fully: f4 gets 10, f3 the remaining 20.
	if math.Abs(fair["f4"]-10) > 1e-6 || math.Abs(fair["f3"]-20) > 1e-6 {
		t.Errorf("maxmin allocation %v, want f3=20 f4=10", fair)
	}
	// Max-min maximizes the worst-off farm's absolute delivery (10 vs 6);
	// proportional instead equalizes satisfaction ratios.
	minOf := func(a Allocation) float64 {
		m := math.Inf(1)
		for _, v := range a {
			m = math.Min(m, v)
		}
		return m
	}
	if minOf(fair) <= minOf(prop) {
		t.Errorf("maxmin worst delivery %.1f should beat proportional %.1f", minOf(fair), minOf(prop))
	}
	if MinSatisfaction(prop, demand) != 0.6 {
		t.Errorf("proportional satisfaction %.2f, want 0.6", MinSatisfaction(prop, demand))
	}
	// Both deliver the full bottleneck volume.
	if math.Abs(fair.Total()-30) > 1e-6 || math.Abs(prop.Total()-30) > 1e-6 {
		t.Errorf("totals: fair %.1f prop %.1f, want 30", fair.Total(), prop.Total())
	}
}

func TestAllocationValidation(t *testing.T) {
	n := cbecNet(t)
	if _, err := n.AllocateMaxMin(map[string]float64{"j1": 5}); err == nil {
		t.Error("demand on junction accepted")
	}
	if _, err := n.AllocateProportional(map[string]float64{"f1": -5}); err == nil {
		t.Error("negative demand accepted")
	}
}

// Property: max-min never violates any canal capacity and never exceeds any
// demand, for random demand vectors.
func TestMaxMinInvariantsProperty(t *testing.T) {
	n := cbecNet(t)
	f := func(d1, d2, d3, d4 uint8) bool {
		demand := map[string]float64{
			"f1": float64(d1), "f2": float64(d2), "f3": float64(d3), "f4": float64(d4),
		}
		alloc, err := n.AllocateMaxMin(demand)
		if err != nil {
			return false
		}
		for id, d := range demand {
			if alloc[id] > d+1e-6 || alloc[id] < -1e-9 {
				return false
			}
		}
		if alloc["f3"]+alloc["f4"] > 30+1e-6 {
			return false
		}
		if alloc["f1"]+alloc["f2"] > 60+1e-6 {
			return false
		}
		return alloc.Total() <= 100+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func intercropSources() []WaterSource {
	return []WaterSource{
		{Name: "well", CapacityM3: 400, CostPerM3: 0.08},
		{Name: "canal", CapacityM3: 300, CostPerM3: 0.15},
		{Name: "desal", CapacityM3: 2000, CostPerM3: 0.85},
	}
}

func TestAllocateByCostPrefersCheap(t *testing.T) {
	plan, err := AllocateByCost(500, intercropSources())
	if err != nil {
		t.Fatal(err)
	}
	if plan.DrawM3["well"] != 400 || plan.DrawM3["canal"] != 100 || plan.DrawM3["desal"] != 0 {
		t.Errorf("plan = %+v", plan.DrawM3)
	}
	wantCost := 400*0.08 + 100*0.15
	if math.Abs(plan.CostEUR-wantCost) > 1e-9 {
		t.Errorf("cost %.2f, want %.2f", plan.CostEUR, wantCost)
	}
	if plan.Shortfall != 0 {
		t.Errorf("shortfall %.1f", plan.Shortfall)
	}
}

func TestAllocateByCostSpillsToDesal(t *testing.T) {
	plan, _ := AllocateByCost(1000, intercropSources())
	if plan.DrawM3["desal"] != 300 {
		t.Errorf("desal draw %.1f, want 300", plan.DrawM3["desal"])
	}
	// Demand beyond all capacity reports shortfall.
	plan, _ = AllocateByCost(5000, intercropSources())
	if plan.Shortfall != 5000-2700 {
		t.Errorf("shortfall %.1f", plan.Shortfall)
	}
}

func TestCostAwareBeatsNaive(t *testing.T) {
	demand := 600.0
	smart, err := AllocateByCost(demand, intercropSources())
	if err != nil {
		t.Fatal(err)
	}
	naive, err := AllocateNaive(demand, intercropSources())
	if err != nil {
		t.Fatal(err)
	}
	if smart.Shortfall != 0 || naive.Shortfall != 0 {
		t.Fatalf("both plans should satisfy 600 m³ (smart %.1f naive %.1f)", smart.Shortfall, naive.Shortfall)
	}
	if smart.CostEUR >= naive.CostEUR {
		t.Errorf("cost-aware %.2f EUR should beat naive %.2f EUR", smart.CostEUR, naive.CostEUR)
	}
}

func TestAllocateValidatesInput(t *testing.T) {
	if _, err := AllocateByCost(-1, intercropSources()); err == nil {
		t.Error("negative demand accepted")
	}
	if _, err := AllocateByCost(10, []WaterSource{{Name: "x", CapacityM3: -5}}); err == nil {
		t.Error("negative capacity accepted")
	}
	plan, err := AllocateNaive(10, nil)
	if err != nil || plan.Shortfall != 10 {
		t.Errorf("empty sources: %+v, %v", plan, err)
	}
}
