// Package waterdist models the CBEC pilot's substrate: a canal network
// distributing water from a source through capacity-limited reaches to farm
// offtakes. It provides two allocators — a naive proportional split and a
// max-min fair progressive-filling optimizer — so the platform can show the
// "optimizing water distribution to the farms" objective, plus the
// cost-aware multi-source scheduler the Intercrop pilot needs for its
// expensive desalinated water.
package waterdist

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// NodeKind classifies network nodes.
type NodeKind int

// Node kinds.
const (
	KindSource NodeKind = iota + 1
	KindJunction
	KindOfftake
)

// Network is a rooted canal tree: one source, junctions, and offtakes at
// the leaves. Edges carry daily capacities (m³/day).
type Network struct {
	source   string
	nodes    map[string]NodeKind
	parent   map[string]string
	capacity map[string]float64 // keyed by child node: capacity of edge parent→child
	children map[string][]string
	frozen   bool
}

// NewNetwork starts a network with its source node.
func NewNetwork(sourceID string) (*Network, error) {
	if sourceID == "" {
		return nil, fmt.Errorf("waterdist: empty source id")
	}
	n := &Network{
		source:   sourceID,
		nodes:    map[string]NodeKind{sourceID: KindSource},
		parent:   make(map[string]string),
		capacity: make(map[string]float64),
		children: make(map[string][]string),
	}
	return n, nil
}

// AddCanal attaches a new node under parent with the given canal capacity.
// kind must be KindJunction or KindOfftake.
func (n *Network) AddCanal(parentID, id string, kind NodeKind, capacityM3 float64) error {
	if n.frozen {
		return errors.New("waterdist: network already validated (frozen)")
	}
	if kind != KindJunction && kind != KindOfftake {
		return fmt.Errorf("waterdist: node %q: bad kind %d", id, kind)
	}
	if id == "" || capacityM3 <= 0 {
		return fmt.Errorf("waterdist: node %q: need id and positive capacity", id)
	}
	if _, ok := n.nodes[parentID]; !ok {
		return fmt.Errorf("waterdist: parent %q unknown", parentID)
	}
	if n.nodes[parentID] == KindOfftake {
		return fmt.Errorf("waterdist: parent %q is an offtake (leaf)", parentID)
	}
	if _, dup := n.nodes[id]; dup {
		return fmt.Errorf("waterdist: node %q already exists", id)
	}
	n.nodes[id] = kind
	n.parent[id] = parentID
	n.capacity[id] = capacityM3
	n.children[parentID] = append(n.children[parentID], id)
	return nil
}

// Validate freezes the topology after checking every junction leads to at
// least one offtake.
func (n *Network) Validate() error {
	if len(n.Offtakes()) == 0 {
		return errors.New("waterdist: network has no offtakes")
	}
	for id, kind := range n.nodes {
		if kind == KindJunction && len(n.children[id]) == 0 {
			return fmt.Errorf("waterdist: junction %q is a dead end", id)
		}
	}
	n.frozen = true
	return nil
}

// Offtakes returns the offtake ids, sorted.
func (n *Network) Offtakes() []string {
	var out []string
	for id, kind := range n.nodes {
		if kind == KindOfftake {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// pathEdges returns the chain of edge-keys (child node ids) from the source
// down to id.
func (n *Network) pathEdges(id string) []string {
	var rev []string
	for id != n.source {
		rev = append(rev, id)
		id = n.parent[id]
	}
	// reverse
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Allocation maps offtake id → delivered m³.
type Allocation map[string]float64

// Total returns the sum of deliveries.
func (a Allocation) Total() float64 {
	t := 0.0
	for _, v := range a {
		t += v
	}
	return t
}

// MinSatisfaction returns the minimum delivered/demand ratio across
// offtakes with positive demand — the fairness figure of merit.
func MinSatisfaction(alloc Allocation, demand map[string]float64) float64 {
	minSat := math.Inf(1)
	for id, d := range demand {
		if d <= 0 {
			continue
		}
		minSat = math.Min(minSat, alloc[id]/d)
	}
	if math.IsInf(minSat, 1) {
		return 1
	}
	return minSat
}

// checkDemand validates a demand map against the network.
func (n *Network) checkDemand(demand map[string]float64) error {
	for id, d := range demand {
		if n.nodes[id] != KindOfftake {
			return fmt.Errorf("waterdist: demand for non-offtake %q", id)
		}
		if d < 0 {
			return fmt.Errorf("waterdist: negative demand for %q", id)
		}
	}
	return nil
}

// AllocateProportional is the baseline: every offtake requests its demand;
// when an edge is oversubscribed, all flows through it scale down by the
// same factor, cascading from the source. This mirrors how districts
// historically split water pro-rata without per-farm intelligence.
func (n *Network) AllocateProportional(demand map[string]float64) (Allocation, error) {
	if err := n.checkDemand(demand); err != nil {
		return nil, err
	}
	alloc := make(Allocation, len(demand))
	for id, d := range demand {
		alloc[id] = d
	}
	// Repeatedly find the most oversubscribed edge and scale its subtree.
	for iter := 0; iter < len(n.nodes)+1; iter++ {
		worstRatio := 1.0
		worstEdge := ""
		for edge, cap := range n.capacity {
			flow := n.subtreeFlow(edge, alloc)
			if flow > cap && cap/flow < worstRatio {
				worstRatio = cap / flow
				worstEdge = edge
			}
		}
		if worstEdge == "" {
			return alloc, nil
		}
		for _, off := range n.subtreeOfftakes(worstEdge) {
			alloc[off] *= worstRatio
		}
	}
	return alloc, nil
}

// AllocateMaxMin runs progressive filling: raise every unfrozen offtake's
// allocation together until an edge saturates or a demand is met, freeze,
// repeat. The result is the max-min fair allocation subject to demands and
// capacities — what the SWAMP optimizer deploys at CBEC.
func (n *Network) AllocateMaxMin(demand map[string]float64) (Allocation, error) {
	if err := n.checkDemand(demand); err != nil {
		return nil, err
	}
	alloc := make(Allocation, len(demand))
	active := make(map[string]bool)
	for id, d := range demand {
		alloc[id] = 0
		if d > 0 {
			active[id] = true
		}
	}
	for len(active) > 0 {
		// Max uniform increment before an edge saturates.
		inc := math.Inf(1)
		for edge, cap := range n.capacity {
			nActive := 0
			for _, off := range n.subtreeOfftakes(edge) {
				if active[off] {
					nActive++
				}
			}
			if nActive == 0 {
				continue
			}
			slack := cap - n.subtreeFlow(edge, alloc)
			inc = math.Min(inc, slack/float64(nActive))
		}
		// Demand completion can bind earlier.
		for off := range active {
			inc = math.Min(inc, demand[off]-alloc[off])
		}
		if inc < 0 {
			inc = 0
		}
		for off := range active {
			alloc[off] += inc
		}
		// Freeze saturated offtakes: demand met, or on a saturated path.
		for off := range active {
			if alloc[off] >= demand[off]-1e-9 {
				delete(active, off)
				continue
			}
			for _, edge := range n.pathEdges(off) {
				if n.subtreeFlow(edge, alloc) >= n.capacity[edge]-1e-9 {
					delete(active, off)
					break
				}
			}
		}
		if inc == 0 && len(active) > 0 {
			// No progress possible; all remaining are capacity-blocked.
			break
		}
	}
	return alloc, nil
}

func (n *Network) subtreeOfftakes(node string) []string {
	var out []string
	var walk func(string)
	walk = func(id string) {
		if n.nodes[id] == KindOfftake {
			out = append(out, id)
			return
		}
		for _, c := range n.children[id] {
			walk(c)
		}
	}
	walk(node)
	return out
}

func (n *Network) subtreeFlow(node string, alloc Allocation) float64 {
	f := 0.0
	for _, off := range n.subtreeOfftakes(node) {
		f += alloc[off]
	}
	return f
}

// WaterSource is one supply option for the multi-source (Intercrop)
// scheduler.
type WaterSource struct {
	Name       string
	CapacityM3 float64 // per day
	CostPerM3  float64 // €/m³ (desalination ≈ 0.6-1.0, wells ≈ 0.05-0.1)
}

// SourcePlan is the chosen draw per source plus the total cost.
type SourcePlan struct {
	DrawM3    map[string]float64
	CostEUR   float64
	Shortfall float64 // unmet demand
}

// AllocateByCost fills demand from the cheapest sources first — the
// rational-use policy for a farm that pays desalination prices.
func AllocateByCost(demandM3 float64, sources []WaterSource) (SourcePlan, error) {
	if demandM3 < 0 {
		return SourcePlan{}, fmt.Errorf("waterdist: negative demand %g", demandM3)
	}
	for _, s := range sources {
		if s.CapacityM3 < 0 || s.CostPerM3 < 0 {
			return SourcePlan{}, fmt.Errorf("waterdist: source %q has negative parameters", s.Name)
		}
	}
	sorted := append([]WaterSource(nil), sources...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].CostPerM3 != sorted[j].CostPerM3 {
			return sorted[i].CostPerM3 < sorted[j].CostPerM3
		}
		return sorted[i].Name < sorted[j].Name
	})
	plan := SourcePlan{DrawM3: make(map[string]float64, len(sources))}
	remaining := demandM3
	for _, s := range sorted {
		if remaining <= 0 {
			break
		}
		draw := math.Min(remaining, s.CapacityM3)
		if draw > 0 {
			plan.DrawM3[s.Name] = draw
			plan.CostEUR += draw * s.CostPerM3
			remaining -= draw
		}
	}
	plan.Shortfall = math.Max(0, remaining)
	return plan, nil
}

// AllocateNaive is the baseline that splits demand evenly across sources
// regardless of cost (what a non-smart controller does).
func AllocateNaive(demandM3 float64, sources []WaterSource) (SourcePlan, error) {
	if demandM3 < 0 {
		return SourcePlan{}, fmt.Errorf("waterdist: negative demand %g", demandM3)
	}
	plan := SourcePlan{DrawM3: make(map[string]float64, len(sources))}
	if len(sources) == 0 {
		plan.Shortfall = demandM3
		return plan, nil
	}
	share := demandM3 / float64(len(sources))
	remaining := demandM3
	for _, s := range sources {
		draw := math.Min(share, s.CapacityM3)
		plan.DrawM3[s.Name] = draw
		plan.CostEUR += draw * s.CostPerM3
		remaining -= draw
	}
	// Second pass: spill leftover into any remaining capacity, arbitrary
	// (name) order — still cost-blind.
	if remaining > 1e-9 {
		sorted := append([]WaterSource(nil), sources...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		for _, s := range sorted {
			if remaining <= 0 {
				break
			}
			spare := s.CapacityM3 - plan.DrawM3[s.Name]
			draw := math.Min(remaining, spare)
			if draw > 0 {
				plan.DrawM3[s.Name] += draw
				plan.CostEUR += draw * s.CostPerM3
				remaining -= draw
			}
		}
	}
	plan.Shortfall = math.Max(0, remaining)
	return plan, nil
}
