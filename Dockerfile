# Multi-stage build for swampd (broker + northbound + cluster plane) and
# swamp-sim (load/recovery/cluster harness). The module has no external
# dependencies, so the build stage never touches the network.
#
#   docker build -t swamp/swampd .
#   docker compose up            # 3-node replicated cluster, see docker-compose.yml
#   docker compose run drill     # readiness + replication smoke drill
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/swampd ./cmd/swampd \
 && CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/swamp-sim ./cmd/swamp-sim

FROM alpine:3.20
# curl is only used by the compose drill (OAuth POST + readyz asserts);
# the HEALTHCHECK sticks to busybox wget so the base stays minimal.
RUN apk add --no-cache curl ca-certificates \
 && adduser -D -u 10001 swamp \
 && mkdir -p /var/lib/swamp /etc/swamp \
 && chown -R swamp /var/lib/swamp
COPY --from=build /out/swampd /out/swamp-sim /usr/local/bin/
COPY examples/swampd.toml /etc/swamp/swampd.toml
COPY scripts/cluster-drill.sh /usr/local/bin/cluster-drill.sh
USER swamp
VOLUME /var/lib/swamp
# 1883 MQTT southbound, 8026 HTTP northbound (+/metrics,/readyz), 7700 replication.
EXPOSE 1883 8026 7700
HEALTHCHECK --interval=5s --timeout=2s --start-period=15s --retries=5 \
  CMD wget -q -O /dev/null http://127.0.0.1:8026/readyz || exit 1
ENTRYPOINT ["swampd"]
# Standalone single-node default; docker-compose.yml overrides with the
# 3-node cluster flag set. Every knob is also reachable via SWAMP_* env
# (e.g. SWAMP_CLUSTER_NODE_ID) or -config /etc/swamp/swampd.toml.
CMD ["-wal-dir", "/var/lib/swamp", "-listen", "0.0.0.0:1883", "-http", "0.0.0.0:8026", "-log-format", "json"]
