// MATOPIBA pilot example: run the full soybean season twice on identical
// heterogeneous soil — Variable Rate Irrigation vs conventional uniform
// pivot practice — and report the pilot's headline numbers: water volume,
// pump energy and yield ("save energy used in irrigation", paper §I).
package main

import (
	"fmt"
	"log"

	"github.com/swamp-project/swamp/internal/core"
)

func main() {
	fmt.Println("MATOPIBA pilot: VRI vs conventional uniform pivot (soybean, 120-day season)")
	fmt.Println()
	fmt.Printf("%-12s %12s %12s %12s %8s\n", "VARIABILITY", "VRI m3", "UNIFORM m3", "SAVING", "ΔYIELD")
	for _, variability := range []float64{0.1, 0.2, 0.3, 0.4} {
		rows, err := core.ExpVRIvsUniform(variability, 42)
		if err != nil {
			log.Fatal(err)
		}
		vri, uni := rows[0], rows[1]
		saving := 100 * (1 - vri.WaterM3/uni.WaterM3)
		fmt.Printf("%-12.1f %12.0f %12.0f %11.1f%% %+8.3f\n",
			variability, vri.WaterM3, uni.WaterM3, saving, vri.YieldIndex-uni.YieldIndex)
	}
	fmt.Println()
	fmt.Println("The saving grows with soil heterogeneity: uniform practice must size")
	fmt.Println("every pass for the neediest sector (the paper's 'farmers feed more")
	fmt.Println("water than is needed' problem), while VRI waters each sector to its")
	fmt.Println("own requirement. Pump energy scales linearly with volume.")

	rows, err := core.ExpVRIvsUniform(0.3, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-10s water=%6.0f m3  energy=%7.1f kWh  yield=%.3f  stress-days=%.1f\n",
			r.Strategy, r.WaterM3, r.EnergyKWh, r.YieldIndex, r.StressDays)
	}
}
