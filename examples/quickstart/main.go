// Quickstart: wire a complete SWAMP platform for the MATOPIBA pilot, push
// one round of sensor readings through MQTT → IoT agent → context broker,
// run one fog decision cycle, and print what the platform saw and decided.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/swamp-project/swamp/internal/core"
)

func main() {
	// One call wires the full stack: MQTT broker, IoT agent, NGSI context
	// broker, identity/OAuth/PEP security, anomaly engine, fog node, soil
	// field, weather and the provisioned devices of the pilot.
	platform, err := core.New(core.Options{
		Pilot: core.PilotMATOPIBA,
		Mode:  core.ModeFarmFog,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	// Dry the field a little so there is something to decide about.
	for i := 0; i < 60; i++ {
		if _, err := platform.Field.StepAll(6, 0, nil); err != nil {
			log.Fatal(err)
		}
	}

	// Northbound: every soil probe samples the (simulated) field and
	// publishes UltraLight payloads over MQTT; the agent decodes them into
	// NGSI entities.
	at := time.Now()
	if err := platform.PumpOnce(at, 5*time.Second); err != nil {
		log.Fatal(err)
	}
	entities := platform.Context.QueryEntities("urn:swamp:matopiba:probe:*", "")
	fmt.Printf("context broker holds %d probe entities; first one:\n", len(entities))
	for _, name := range entities[0].AttrNames() {
		v, _ := entities[0].Attrs[name].Float()
		fmt.Printf("  %-22s = %.3f\n", name, v)
	}

	// Give the fog node a moment to ingest the notifications, then run
	// one local decision cycle.
	time.Sleep(100 * time.Millisecond)
	cmds, err := platform.DecideOnce(at)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfog decision issued %d command(s):\n", len(cmds))
	for _, c := range cmds {
		fmt.Printf("  %s %s %.1f mm\n", c.Target, c.Name, c.Value)
	}

	// The farmer reads their own data through the security stack.
	token, err := platform.Tokens.GrantPassword("matopiba-farmer", "farmer-secret")
	if err != nil {
		log.Fatal(err)
	}
	principal, err := platform.PEP.Authorize(token.Value, "read", "ngsi:urn:swamp:matopiba:probe:01")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPEP permitted %q to read probe data (OAuth2 + policy check)\n", principal.ID)
}
