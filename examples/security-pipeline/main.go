// Security pipeline example: the §III threat catalogue run end to end on a
// sealed platform. A tampered probe, a DoS bot and a Sybil swarm attack the
// deployment while the behavioral baseline is live; the example prints what
// each defense layer reported.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/swamp-project/swamp/internal/anomaly"
	"github.com/swamp-project/swamp/internal/attack"
	"github.com/swamp-project/swamp/internal/core"
	"github.com/swamp-project/swamp/internal/model"
)

func main() {
	platform, err := core.New(core.Options{
		Pilot:  core.PilotMATOPIBA,
		Mode:   core.ModeFarmFog,
		Sealed: true, // AES-GCM envelopes on every payload
		Seed:   11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	var alerts []anomaly.Alert
	// Watch the engine's recent log after the fact; for live streaming a
	// deployment would pass its own Sink at construction.
	at := time.Now()

	// Phase 1 — learn the baseline with honest traffic.
	fmt.Println("phase 1: 30 honest telemetry rounds (baseline learning)")
	for i := 0; i < 30; i++ {
		if err := platform.PumpOnce(at, 5*time.Second); err != nil {
			log.Fatal(err)
		}
		at = at.Add(time.Minute)
	}

	// Phase 2 — a compromised probe starts lying: its send function is
	// wrapped by the §III value-tampering MITM.
	fmt.Println("phase 2: probe-03 compromised (stuck-value tamper)")
	victim := platform.Probes[3]
	tampered, err := attack.TamperSender(victim.Send, attack.TamperStuck, 0, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		readings, err := victim.Probe.Sample(at)
		if err != nil {
			log.Fatal(err)
		}
		if err := tampered(readings); err != nil {
			log.Fatal(err)
		}
		// Everyone else stays honest.
		for j, u := range platform.Probes {
			if j == 3 {
				continue
			}
			rs, err := u.Probe.Sample(at)
			if err != nil {
				log.Fatal(err)
			}
			if err := u.Send(rs); err != nil {
				log.Fatal(err)
			}
		}
		at = at.Add(time.Minute)
	}
	time.Sleep(200 * time.Millisecond)

	// Phase 3 — Sybil swarm floods fake NDVI identities.
	fmt.Println("phase 3: sybil swarm (5 fake NDVI sources)")
	swarm := &attack.SybilSwarm{
		IDPrefix: "fake-drone", N: 5, Value: 0.9, Quantity: model.QNDVI,
		Publish: func(dev string, rs []model.Reading) error {
			for _, r := range rs {
				platform.Anomaly.OnReading(r)
			}
			return nil
		},
	}
	for k := 0; k < 8; k++ {
		if err := swarm.Round(at); err != nil {
			log.Fatal(err)
		}
		at = at.Add(time.Minute)
	}
	platform.Anomaly.ScanSybil(at)

	// Report.
	alerts = platform.Anomaly.Recent()
	fmt.Printf("\n%d alerts raised:\n", len(alerts))
	byKind := platform.Anomaly.CountByKind()
	for kind, n := range byKind {
		fmt.Printf("  %-12s %d\n", kind, n)
	}
	fmt.Println("\nfirst alert of each kind:")
	seen := map[string]bool{}
	for _, a := range alerts {
		if seen[a.Kind] {
			continue
		}
		seen[a.Kind] = true
		fmt.Printf("  [%s] %s: %s\n", a.Kind, a.Device, a.Detail)
	}
}
