// CBEC pilot example: a consortium canal network under scarcity. Builds the
// Emilia-style distribution tree, generates daily farm demands, and compares
// the historical proportional split with SWAMP's max-min fair optimizer —
// plus the Intercrop-style cost-aware sourcing with a desalination plant.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/swamp-project/swamp/internal/waterdist"
)

func main() {
	// src ── main(1000) ─┬─ north(550) ── 6 farms
	//                    └─ south(350) ── 6 farms
	net, err := waterdist.NewNetwork("src")
	if err != nil {
		log.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(net.AddCanal("src", "main", waterdist.KindJunction, 1000))
	must(net.AddCanal("main", "north", waterdist.KindJunction, 550))
	must(net.AddCanal("main", "south", waterdist.KindJunction, 350))
	for i := 0; i < 6; i++ {
		must(net.AddCanal("north", fmt.Sprintf("farm-n%d", i), waterdist.KindOfftake, 140))
		must(net.AddCanal("south", fmt.Sprintf("farm-s%d", i), waterdist.KindOfftake, 100))
	}
	must(net.Validate())

	rng := rand.New(rand.NewSource(7))
	demand := make(map[string]float64)
	total := 0.0
	for _, farm := range net.Offtakes() {
		demand[farm] = 50 + rng.Float64()*100
		total += demand[farm]
	}
	fmt.Printf("12 farms request %.0f m3/day through a 1000 m3/day main canal\n\n", total)

	prop, err := net.AllocateProportional(demand)
	if err != nil {
		log.Fatal(err)
	}
	fair, err := net.AllocateMaxMin(demand)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %9s %14s %14s\n", "FARM", "DEMAND", "PROPORTIONAL", "MAXMIN-FAIR")
	for _, farm := range net.Offtakes() {
		fmt.Printf("%-10s %9.1f %14.1f %14.1f\n", farm, demand[farm], prop[farm], fair[farm])
	}
	fmt.Printf("\n%-24s %14.1f %14.1f\n", "total delivered",
		prop.Total(), fair.Total())
	fmt.Printf("%-24s %14.2f %14.2f\n", "min satisfaction",
		waterdist.MinSatisfaction(prop, demand), waterdist.MinSatisfaction(fair, demand))

	// Intercrop-style sourcing: the same daily demand drawn from priced
	// sources, cheapest first.
	fmt.Println("\nIntercrop sourcing for a 700 m3 day (well 0.08, canal 0.15, desal 0.85 EUR/m3):")
	sources := []waterdist.WaterSource{
		{Name: "well", CapacityM3: 350, CostPerM3: 0.08},
		{Name: "canal", CapacityM3: 250, CostPerM3: 0.15},
		{Name: "desal", CapacityM3: 5000, CostPerM3: 0.85},
	}
	smart, err := waterdist.AllocateByCost(700, sources)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := waterdist.AllocateNaive(700, sources)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  cost-aware: %v  → %.2f EUR\n", smart.DrawM3, smart.CostEUR)
	fmt.Printf("  naive:      %v  → %.2f EUR\n", naive.DrawM3, naive.CostEUR)
}
