module github.com/swamp-project/swamp

go 1.24
